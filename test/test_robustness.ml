(* Robustness suite: fault injection into the statistics store, the
   graceful-degradation estimation chain, the optimization-time budget
   fallback, and guard-driven mid-query re-optimization.

   The acceptance bar (ISSUE 1): every fault kind still yields an
   executable plan with no escaping exception; a guard fired on a
   misestimated plan produces a re-optimized continuation whose metered
   cost (including the wasted prefix) beats running the bad plan to
   completion; and guard overhead on a well-estimated plan stays under
   5% of the unguarded metered cost. *)

open Rq_storage
open Rq_exec
open Rq_stats
open Rq_optimizer

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fixture: customers <- orders <- lineitems chain (FKs point left),
   with indexes on the join columns so indexed nested-loop plans are
   available — both as a temptation for a misestimating optimizer and
   as the bad plan the rescue test forces. *)
let chain_catalog () =
  let rng = Rq_math.Rng.create 17 in
  let catalog = Catalog.create () in
  let customers = 20 and orders = 200 and lineitems = 2000 in
  Catalog.add_table catalog ~primary_key:"c_id"
    (Relation.create ~name:"customers"
       ~schema:
         (Schema.create
            [ { Schema.name = "c_id"; ty = Value.T_int }; { Schema.name = "c_tier"; ty = Value.T_int } ])
       (Array.init customers (fun i -> [| v_int i; v_int (i mod 4) |])));
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_cust"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init orders (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng customers); v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "orders"; from_column = "o_cust"; to_table = "customers"; to_column = "c_id" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_order";
  catalog

let fresh_stats catalog = Stats_store.update_statistics (Rq_math.Rng.create 41) catalog

let three_join_query () =
  Logical.query
    [
      Logical.scan ~pred:(Pred.le (Expr.col "l_qty") (Expr.int 25)) "lineitems";
      Logical.scan "orders";
      Logical.scan "customers";
    ]

(* ------------------------------------------------------------------ *)
(* Fault injection + degradation chain                                 *)
(* ------------------------------------------------------------------ *)

(* Shared scaffold: damage the stats with [profile], optimize the
   three-way join under the degrading chain, and require (a) a plan,
   (b) that it executes, (c) the same answer as the oracle plan, and
   (d) a logged degradation event of [expected_kind]. *)
let degraded_roundtrip ~profile ~expected_kind () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let rng = Rq_math.Rng.create 99 in
  let injections =
    match Fault.profile_injections rng stats profile with
    | Ok inj -> inj
    | Error msg -> Alcotest.fail msg
  in
  check_bool "profile injects something" true (injections <> []);
  let damaged = Fault.apply rng stats injections in
  let events = ref [] in
  let estimator =
    Cardinality.degrading ~log:(fun e -> events := e :: !events) damaged
      (Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent 80.0) ())
  in
  let opt = Optimizer.create damaged estimator in
  let query = three_join_query () in
  match Optimizer.optimize opt query with
  | Error msg -> Alcotest.fail ("optimization failed under fault: " ^ msg)
  | Ok d ->
      (match Plan.validate catalog d.Optimizer.plan with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("invalid plan under fault: " ^ msg));
      let result = Executor.run catalog (Cost.create ()) d.Optimizer.plan in
      (* Ground truth via the oracle configuration on pristine stats. *)
      let oracle = Optimizer.create stats (Cardinality.oracle catalog) in
      let reference =
        Executor.run catalog (Cost.create ()) (Optimizer.optimize_exn oracle query).Optimizer.plan
      in
      check_int "same answer as oracle plan"
        (Array.length reference.Executor.tuples)
        (Array.length result.Executor.tuples);
      check_bool
        (Printf.sprintf "logged a %s event" (Fault.kind_to_string expected_kind))
        true
        (List.exists (fun (e : Fault.event) -> e.Fault.kind = expected_kind) !events)

let test_fault_missing () = degraded_roundtrip ~profile:"missing" ~expected_kind:Fault.Missing ()
let test_fault_truncate () = degraded_roundtrip ~profile:"truncate" ~expected_kind:Fault.Missing ()
let test_fault_corrupt () = degraded_roundtrip ~profile:"corrupt" ~expected_kind:Fault.Corrupt ()
let test_fault_stale () = degraded_roundtrip ~profile:"stale" ~expected_kind:Fault.Stale ()

let test_fault_dangling_fk () =
  degraded_roundtrip ~profile:"dangling-fk" ~expected_kind:Fault.Corrupt ()

(* Dangling_fk must be caught by the FK-consistency check specifically:
   the damaged values stay type-correct, so a schema scan sees nothing. *)
let test_dangling_fk_detail () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let rng = Rq_math.Rng.create 3 in
  let damaged = Fault.apply rng stats [ Fault.Dangling_fk { root = "lineitems"; break = 4 } ] in
  match Stats_store.synopsis damaged ~root:"lineitems" with
  | None -> Alcotest.fail "synopsis vanished"
  | Some syn -> (
      match Fault.verify_synopsis catalog syn with
      | Ok () -> Alcotest.fail "dangling FK rows passed verification"
      | Error e ->
          check_bool "classified corrupt" true (e.Fault.kind = Fault.Corrupt);
          check_bool "detail names the FK" true
            (String.length e.Fault.detail > 0
            &&
            let contains s sub =
              let n = String.length s and m = String.length sub in
              let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
              go 0
            in
            contains e.Fault.detail "breaks FK"))

let test_injection_json_roundtrip () =
  let injections =
    [
      Fault.Drop_synopsis "orders";
      Fault.Truncate_synopsis { root = "lineitems"; keep = 2 };
      Fault.Corrupt_synopsis "customers";
      Fault.Skew_synopsis { root = "orders"; factor = 16.0 };
      Fault.Drop_histogram { table = "orders"; column = "o_cid" };
      Fault.Dangling_fk { root = "lineitems"; break = 25 };
    ]
  in
  List.iter
    (fun inj ->
      let json = Fault.injection_to_json inj in
      (* through the printer and parser, as a repro file would *)
      match Rq_obs.Json.parse (Rq_obs.Json.to_string json) with
      | Error e -> Alcotest.fail e
      | Ok parsed -> (
          match Fault.injection_of_json parsed with
          | Error e -> Alcotest.fail e
          | Ok inj' ->
              Alcotest.(check string)
                "injection survives JSON round-trip" (Fault.injection_to_string inj)
                (Fault.injection_to_string inj')))
    injections

let test_fault_chaos () =
  (* Chaos mixes injections randomly; no specific kind is guaranteed, but
     the optimizer must still answer and the answer must still be right. *)
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let query = three_join_query () in
  let oracle = Optimizer.create stats (Cardinality.oracle catalog) in
  let reference =
    Executor.run catalog (Cost.create ()) (Optimizer.optimize_exn oracle query).Optimizer.plan
  in
  for seed = 1 to 5 do
    let rng = Rq_math.Rng.create seed in
    let injections =
      match Fault.profile_injections rng stats "chaos" with
      | Ok inj -> inj
      | Error msg -> Alcotest.fail msg
    in
    let damaged = Fault.apply rng stats injections in
    let estimator =
      Cardinality.degrading damaged
        (Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent 80.0) ())
    in
    let opt = Optimizer.create damaged estimator in
    match Optimizer.optimize opt query with
    | Error msg -> Alcotest.fail (Printf.sprintf "chaos seed %d: %s" seed msg)
    | Ok d ->
        let result = Executor.run catalog (Cost.create ()) d.Optimizer.plan in
        check_int
          (Printf.sprintf "chaos seed %d answer" seed)
          (Array.length reference.Executor.tuples)
          (Array.length result.Executor.tuples)
  done

let test_verify_synopsis_healthy () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  List.iter
    (fun root ->
      match Stats_store.synopsis stats ~root with
      | None -> ()
      | Some syn -> (
          match Fault.verify_synopsis catalog syn with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail
                (Printf.sprintf "healthy synopsis %s rejected: %s" root (Fault.event_to_string e))))
    (Stats_store.synopsis_roots stats)

let test_fault_apply_is_copy_on_write () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let roots_before = Stats_store.synopsis_roots stats in
  let rng = Rq_math.Rng.create 7 in
  let damaged =
    Fault.apply rng stats (List.map (fun r -> Fault.Drop_synopsis r) roots_before)
  in
  check_bool "damaged store lost synopses" true (Stats_store.synopsis_roots damaged = []);
  check_bool "original store untouched" true (Stats_store.synopsis_roots stats = roots_before)

(* ------------------------------------------------------------------ *)
(* Optimization budget                                                 *)
(* ------------------------------------------------------------------ *)

let test_budget_fallback () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let opt = Optimizer.robust stats in
  let query = three_join_query () in
  let unbudgeted = Optimizer.optimize_exn opt query in
  check_bool "full search not degraded" true (unbudgeted.Optimizer.degraded = []);
  let d = Optimizer.optimize_exn ~budget:1 opt query in
  check_bool "budget hit reported" true
    (List.exists (fun (e : Fault.event) -> e.Fault.kind = Fault.Budget_exceeded)
       d.Optimizer.degraded);
  (match Plan.validate catalog d.Optimizer.plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("left-deep fallback invalid: " ^ msg));
  let fallback = Executor.run catalog (Cost.create ()) d.Optimizer.plan in
  let full = Executor.run catalog (Cost.create ()) unbudgeted.Optimizer.plan in
  check_int "fallback answer matches full search"
    (Array.length full.Executor.tuples)
    (Array.length fallback.Executor.tuples)

let test_left_deep_plan_shape () =
  let catalog = chain_catalog () in
  let query = three_join_query () in
  match Enumerate.left_deep_plan catalog query with
  | None -> Alcotest.fail "no left-deep plan for connected query"
  | Some plan ->
      (match Plan.validate catalog plan with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let tables = List.sort String.compare (Plan.base_tables plan) in
      check_bool "covers all tables" true (tables = [ "customers"; "lineitems"; "orders" ])

(* ------------------------------------------------------------------ *)
(* Guards and mid-query re-optimization                                *)
(* ------------------------------------------------------------------ *)

(* A deliberately bad plan: drive an indexed nested-loop join from a
   scan the (mis)estimator thinks yields ~1 row but that actually
   yields ~1000 — each surviving row pays an index probe plus a random
   page fetch. *)
let bad_inl_plan () =
  Plan.Indexed_nl_join
    {
      outer =
        Plan.Scan
          {
            table = "lineitems";
            access = Plan.Seq_scan;
            pred = Pred.le (Expr.col "l_qty") (Expr.int 25);
          };
      outer_key = "lineitems.l_order";
      inner_table = "orders";
      inner_key = "o_id";
      inner_pred = Pred.True;
    }

let two_join_query () =
  Logical.query
    [
      Logical.scan ~pred:(Pred.le (Expr.col "l_qty") (Expr.int 25)) "lineitems";
      Logical.scan "orders";
    ]

let test_guard_fires_and_rescues () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  (* The misestimating optimizer: thinks every predicate keeps 0.05% of
     rows, so the INL outer looks like ~1 row. *)
  let opt = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in
  let query = two_join_query () in
  let bad = bad_inl_plan () in
  (match Plan.validate catalog bad with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("fixture plan invalid: " ^ msg));
  let _, unguarded = Executor.run_timed catalog bad in
  let outcome = Reopt.execute_plan ~threshold:4.0 opt query bad in
  check_bool "a guard fired" true (outcome.Reopt.events <> []);
  check_bool "continuation was re-optimized" true
    (List.exists (fun (e : Reopt.event) -> e.Reopt.replanned) outcome.Reopt.events);
  check_bool "at least one re-optimization round" true (outcome.Reopt.reoptimizations >= 1);
  (* Same answer as just running the bad plan. *)
  let reference = Executor.run catalog (Cost.create ()) bad in
  check_int "rescued answer matches"
    (Array.length reference.Executor.tuples)
    (Array.length outcome.Reopt.result.Executor.tuples);
  (* The rescue — including the wasted prefix and guard overhead on the
     shared meter — must decisively beat finishing the bad plan. *)
  let rescued = outcome.Reopt.snapshot.Cost.seconds in
  check_bool
    (Printf.sprintf "rescued %.4fs beats unguarded %.4fs" rescued unguarded.Cost.seconds)
    true
    (rescued < unguarded.Cost.seconds /. 2.0);
  (* The final plan is guard-free and no longer the INL shape. *)
  check_int "final plan guard-free" 0 (Plan.guard_count outcome.Reopt.final_plan)

let test_guard_overhead_under_5_percent () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let opt = Optimizer.create stats (Cardinality.oracle catalog) in
  let query = three_join_query () in
  let d = Optimizer.optimize_exn opt query in
  let _, plain = Executor.run_timed catalog d.Optimizer.plan in
  let outcome = Reopt.execute_plan ~threshold:4.0 opt query d.Optimizer.plan in
  check_bool "no guard fired under the oracle" true (outcome.Reopt.events = []);
  check_int "no re-optimization" 0 outcome.Reopt.reoptimizations;
  let guarded = outcome.Reopt.snapshot.Cost.seconds in
  check_bool "guards charge something" true (guarded > plain.Cost.seconds);
  let overhead = (guarded -. plain.Cost.seconds) /. plain.Cost.seconds in
  check_bool
    (Printf.sprintf "overhead %.2f%% < 5%%" (100.0 *. overhead))
    true (overhead < 0.05)

let test_instrument_places_guards () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let opt = Optimizer.create stats (Cardinality.oracle catalog) in
  let d = Optimizer.optimize_exn opt (three_join_query ()) in
  let guarded = Reopt.instrument ~threshold:4.0 opt d.Optimizer.plan in
  check_bool "guards inserted" true (Plan.guard_count guarded >= 2);
  (match Plan.validate catalog guarded with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("guarded plan invalid: " ^ msg));
  (* Idempotent: re-instrumenting replaces rather than stacks guards. *)
  let twice = Reopt.instrument ~threshold:4.0 opt guarded in
  check_int "re-instrumentation does not stack" (Plan.guard_count guarded)
    (Plan.guard_count twice);
  check_int "strip_guards removes all" 0 (Plan.guard_count (Plan.strip_guards guarded))

let test_reopt_budget_exhaustion_completes () =
  (* max_reopts = 0: the guard fires but no replanning is allowed; the
     original plan must still complete and report replanned = false. *)
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let opt = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in
  let outcome = Reopt.execute_plan ~threshold:4.0 ~max_reopts:0 opt (two_join_query ()) (bad_inl_plan ()) in
  check_int "no re-optimization happened" 0 outcome.Reopt.reoptimizations;
  check_bool "the firing is still reported" true
    (List.exists (fun (e : Reopt.event) -> not e.Reopt.replanned) outcome.Reopt.events);
  let reference = Executor.run catalog (Cost.create ()) (bad_inl_plan ()) in
  check_int "answer unchanged"
    (Array.length reference.Executor.tuples)
    (Array.length outcome.Reopt.result.Executor.tuples)

let test_feedback_cache () =
  let fb = Feedback.create () in
  Feedback.record fb ~tables:[ "b"; "a" ] 100.0;
  check_bool "order-insensitive lookup" true (Feedback.observed fb ~tables:[ "a"; "b" ] = Some 100.0);
  Feedback.record fb ~tables:[ "a"; "b" ] 150.0;
  check_bool "overwrite" true (Feedback.observed fb ~tables:[ "b"; "a" ] = Some 150.0);
  let catalog = chain_catalog () in
  (* Base estimator says 0.1% everywhere; feedback knows {lineitems} is
     really 1000 rows. The superset estimate must scale by the subset's
     observed/estimated ratio. *)
  let base = Cardinality.fixed_selectivity catalog 1e-3 in
  let fb = Feedback.create () in
  Feedback.record fb ~tables:[ "lineitems" ] 1000.0;
  let est = Feedback.with_feedback fb base in
  let li = Logical.scan ~pred:(Pred.le (Expr.col "l_qty") (Expr.int 25)) "lineitems" in
  let oo = Logical.scan "orders" in
  check_bool "exact observation wins" true
    (est.Cardinality.expression_cardinality [ li ] = 1000.0);
  let base_sub = base.Cardinality.expression_cardinality [ li ] in
  let base_full = base.Cardinality.expression_cardinality [ li; oo ] in
  let expect = base_full *. (1000.0 /. base_sub) in
  Alcotest.(check (float 1e-6))
    "subset anchoring scales the superset" expect
    (est.Cardinality.expression_cardinality [ li; oo ])

let test_render_events () =
  check_bool "empty" true (Reopt.render_events [] = "no guard fired\n");
  let s =
    Reopt.render_events
      [
        {
          Reopt.label = "Scan(lineitems)";
          expected_rows = 1.0;
          actual_rows = 981;
          q_error = 981.0;
          replanned = true;
        };
      ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions the guard" true (contains s "Scan(lineitems)");
  check_bool "mentions the rescue" true (contains s "re-optimized")

let () =
  Alcotest.run "robustness"
    [
      ( "faults",
        [
          Alcotest.test_case "missing synopses degrade" `Quick test_fault_missing;
          Alcotest.test_case "truncated synopses degrade" `Quick test_fault_truncate;
          Alcotest.test_case "corrupt synopses degrade" `Quick test_fault_corrupt;
          Alcotest.test_case "stale synopses degrade" `Quick test_fault_stale;
          Alcotest.test_case "dangling FK rows degrade" `Quick test_fault_dangling_fk;
          Alcotest.test_case "dangling FK caught by FK check" `Quick test_dangling_fk_detail;
          Alcotest.test_case "injection JSON round-trip" `Quick test_injection_json_roundtrip;
          Alcotest.test_case "chaos profile never aborts" `Quick test_fault_chaos;
          Alcotest.test_case "healthy synopses verify" `Quick test_verify_synopsis_healthy;
          Alcotest.test_case "apply is copy-on-write" `Quick test_fault_apply_is_copy_on_write;
        ] );
      ( "budget",
        [
          Alcotest.test_case "budget exhaustion falls back" `Quick test_budget_fallback;
          Alcotest.test_case "left-deep plan shape" `Quick test_left_deep_plan_shape;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "guard fires and rescues" `Quick test_guard_fires_and_rescues;
          Alcotest.test_case "guard overhead < 5%" `Quick test_guard_overhead_under_5_percent;
          Alcotest.test_case "instrumentation placement" `Quick test_instrument_places_guards;
          Alcotest.test_case "reopt budget exhaustion" `Quick test_reopt_budget_exhaustion_completes;
          Alcotest.test_case "feedback cache" `Quick test_feedback_cache;
          Alcotest.test_case "render events" `Quick test_render_events;
        ] );
    ]
