(* Tests for rq_stats: samples, join synopses, histograms, distinct-value
   estimation, and the statistics store. *)

open Rq_storage
open Rq_exec
open Rq_stats

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close tolerance = Alcotest.(check (float tolerance))

(* Fixture: customers <- orders <- lineitems chain (FKs point left). *)
let chain_catalog () =
  let rng = Rq_math.Rng.create 17 in
  let catalog = Catalog.create () in
  let customers = 20 and orders = 200 and lineitems = 1000 in
  Catalog.add_table catalog ~primary_key:"c_id"
    (Relation.create ~name:"customers"
       ~schema:
         (Schema.create
            [ { Schema.name = "c_id"; ty = Value.T_int }; { Schema.name = "c_tier"; ty = Value.T_int } ])
       (Array.init customers (fun i -> [| v_int i; v_int (i mod 4) |])));
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_cust"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init orders (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng customers); v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "orders"; from_column = "o_cust"; to_table = "customers"; to_column = "c_id" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  catalog

(* ------------------------------------------------------------------ *)
(* Sample                                                              *)
(* ------------------------------------------------------------------ *)

let test_sample_basics () =
  let catalog = chain_catalog () in
  let rel = Catalog.find_table catalog "lineitems" in
  let rng = Rq_math.Rng.create 3 in
  let sample = Sample.of_relation rng ~size:100 rel in
  check_int "size" 100 (Sample.size sample);
  check_int "population" 1000 (Sample.population_size sample);
  let pred = Pred.le (Expr.col "l_qty") (Expr.int 25) in
  let k, n = Sample.evidence sample pred in
  check_int "n is sample size" 100 n;
  check_bool "k in range" true (k >= 0 && k <= 100);
  check_close 1e-9 "naive selectivity = k/n"
    (float_of_int k /. 100.0)
    (Sample.naive_selectivity sample pred)

let test_sample_without_replacement_distinct () =
  let catalog = chain_catalog () in
  let rel = Catalog.find_table catalog "customers" in
  let rng = Rq_math.Rng.create 4 in
  let sample = Sample.of_relation rng ~with_replacement:false ~size:20 rel in
  let ids =
    Relation.fold (fun acc _ tup -> Value.to_string tup.(0) :: acc) [] (Sample.rows sample)
  in
  check_int "all rows, no duplicates" 20 (List.length (List.sort_uniq compare ids))

let test_sample_clamps_without_replacement () =
  let catalog = chain_catalog () in
  let rel = Catalog.find_table catalog "customers" in
  let rng = Rq_math.Rng.create 5 in
  let sample = Sample.of_relation rng ~with_replacement:false ~size:500 rel in
  check_int "clamped to population" 20 (Sample.size sample)

let test_sample_invalid () =
  let catalog = chain_catalog () in
  let rel = Catalog.find_table catalog "customers" in
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Sample.of_relation: size must be positive") (fun () ->
      ignore (Sample.of_relation (Rq_math.Rng.create 1) ~size:0 rel))

let test_sample_statistical_accuracy () =
  (* With 500 of 1000 tuples sampled, k/n for a ~50% predicate must land
     well inside [0.35, 0.65]. *)
  let catalog = chain_catalog () in
  let rel = Catalog.find_table catalog "lineitems" in
  let rng = Rq_math.Rng.create 6 in
  let sample = Sample.of_relation rng ~size:500 rel in
  let sel = Sample.naive_selectivity sample (Pred.le (Expr.col "l_qty") (Expr.int 25)) in
  check_bool "roughly half" true (sel > 0.35 && sel < 0.65)

let test_sample_reservoir () =
  let schema = Schema.create [ { Schema.name = "v"; ty = Value.T_int } ] in
  let stream n = Seq.init n (fun i -> [| v_int i |]) in
  let rng = Rq_math.Rng.create 7 in
  (* Stream longer than the reservoir: uniform without-replacement sample. *)
  let s = Sample.reservoir rng ~size:50 ~schema ~name:"r" (stream 1000) in
  check_int "reservoir size" 50 (Sample.size s);
  check_int "population counted" 1000 (Sample.population_size s);
  let values =
    Relation.fold (fun acc _ tup -> Value.to_string tup.(0) :: acc) [] (Sample.rows s)
  in
  check_int "distinct (without replacement)" 50 (List.length (List.sort_uniq compare values));
  (* Short stream: everything is kept. *)
  let small = Sample.reservoir rng ~size:50 ~schema ~name:"r2" (stream 8) in
  check_int "short stream kept whole" 8 (Sample.size small)

let test_sample_reservoir_statistics () =
  (* Means of reservoir samples over 0..999 must concentrate near 499.5. *)
  let schema = Schema.create [ { Schema.name = "v"; ty = Value.T_int } ] in
  let rng = Rq_math.Rng.create 8 in
  let means =
    List.init 30 (fun _ ->
        let s =
          Sample.reservoir rng ~size:100 ~schema ~name:"r" (Seq.init 1000 (fun i -> [| v_int i |]))
        in
        Relation.fold (fun acc _ tup -> acc +. Value.to_float tup.(0)) 0.0 (Sample.rows s)
        /. 100.0)
  in
  let grand = List.fold_left ( +. ) 0.0 means /. 30.0 in
  check_bool (Printf.sprintf "grand mean %.1f near 499.5" grand) true
    (Float.abs (grand -. 499.5) < 30.0)

(* ------------------------------------------------------------------ *)
(* Join synopsis                                                       *)
(* ------------------------------------------------------------------ *)

let test_synopsis_tables_and_schema () =
  let catalog = chain_catalog () in
  let syn =
    Join_synopsis.build (Rq_math.Rng.create 7) catalog ~size:200 ~root:"lineitems"
  in
  Alcotest.(check (list string)) "closure order"
    [ "lineitems"; "orders"; "customers" ]
    (Join_synopsis.tables syn);
  check_bool "covers pairs" true (Join_synopsis.covers syn [ "lineitems"; "orders" ]);
  check_bool "does not cover outsiders" false (Join_synopsis.covers syn [ "lineitems"; "parts" ]);
  check_int "root size" 1000 (Join_synopsis.root_size syn);
  check_int "sample size" 200 (Join_synopsis.size syn);
  let schema = Relation.schema (Sample.rows (Join_synopsis.sample syn)) in
  List.iter
    (fun col -> check_bool col true (Schema.mem schema col))
    [ "lineitems.l_id"; "orders.o_id"; "customers.c_tier" ]

let test_synopsis_rows_satisfy_fk_join () =
  (* Every synopsis row must be an actual join row: FK columns equal the
     referenced PK columns. *)
  let catalog = chain_catalog () in
  let syn = Join_synopsis.build (Rq_math.Rng.create 8) catalog ~size:150 ~root:"lineitems" in
  let rows = Sample.rows (Join_synopsis.sample syn) in
  let schema = Relation.schema rows in
  let pos c = Schema.index_of schema c in
  Relation.iter
    (fun _ tup ->
      check_bool "l_order = o_id" true
        (Value.equal tup.(pos "lineitems.l_order") tup.(pos "orders.o_id"));
      check_bool "o_cust = c_id" true
        (Value.equal tup.(pos "orders.o_cust") tup.(pos "customers.c_id")))
    rows

let test_synopsis_estimates_join_selectivity () =
  (* The join-synopsis estimate of a cross-table predicate must approach
     the true selectivity (computed by brute force). *)
  let catalog = chain_catalog () in
  let syn = Join_synopsis.build (Rq_math.Rng.create 9) catalog ~size:800 ~root:"lineitems" in
  let pred =
    Pred.conj
      [
        Pred.eq (Expr.col "customers.c_tier") (Expr.int 1);
        Pred.le (Expr.col "lineitems.l_qty") (Expr.int 25);
      ]
  in
  let k, n = Join_synopsis.evidence syn pred in
  let estimate = float_of_int k /. float_of_int n in
  let truth =
    let refs =
      [
        { Rq_optimizer.Logical.table = "lineitems"; pred = Pred.le (Expr.col "l_qty") (Expr.int 25) };
        { Rq_optimizer.Logical.table = "orders"; pred = Pred.True };
        { Rq_optimizer.Logical.table = "customers"; pred = Pred.eq (Expr.col "c_tier") (Expr.int 1) };
      ]
    in
    Rq_optimizer.Naive.selectivity catalog refs
  in
  check_bool
    (Printf.sprintf "estimate %.3f within 5 points of truth %.3f" estimate truth)
    true
    (Float.abs (estimate -. truth) < 0.05)

let test_synopsis_dangling_fk () =
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"p"
    (Relation.create ~name:"parent"
       ~schema:(Schema.create [ { Schema.name = "p"; ty = Value.T_int } ])
       [| [| v_int 0 |] |]);
  Catalog.add_table catalog ~primary_key:"c"
    (Relation.create ~name:"child"
       ~schema:
         (Schema.create
            [ { Schema.name = "c"; ty = Value.T_int }; { Schema.name = "fk"; ty = Value.T_int } ])
       [| [| v_int 0; v_int 99 |] |]);
  Catalog.add_foreign_key catalog
    { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "p" };
  check_bool "dangling FK raises" true
    (try
       ignore (Join_synopsis.build (Rq_math.Rng.create 1) catalog ~size:10 ~root:"child");
       false
     with Invalid_argument _ -> true)

let test_synopsis_unknown_root () =
  let catalog = chain_catalog () in
  check_bool "unknown root raises" true
    (try
       ignore (Join_synopsis.build (Rq_math.Rng.create 1) catalog ~size:10 ~root:"nope");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let uniform_relation n =
  Relation.create ~name:"u"
    ~schema:(Schema.create [ { Schema.name = "v"; ty = Value.T_int } ])
    (Array.init n (fun i -> [| v_int (i mod 1000) |]))

let test_histogram_full_range () =
  let h = Histogram.build (uniform_relation 10_000) "v" in
  check_close 1e-9 "everything" 1.0 (Histogram.selectivity_range h ~lo:None ~hi:None);
  check_close 1e-9 "empty below" 0.0
    (Histogram.selectivity_range h ~lo:(Some (v_int 2000)) ~hi:None)

let test_histogram_half_range () =
  let h = Histogram.build (uniform_relation 10_000) "v" in
  let sel = Histogram.selectivity_range h ~lo:(Some (v_int 0)) ~hi:(Some (v_int 499)) in
  check_bool "about half" true (Float.abs (sel -. 0.5) < 0.02)

let test_histogram_equality () =
  let h = Histogram.build (uniform_relation 10_000) "v" in
  let sel = Histogram.selectivity_eq h (v_int 137) in
  check_bool "about 1/1000" true (Float.abs (sel -. 0.001) < 0.0005);
  check_close 1e-9 "null never matches" 0.0 (Histogram.selectivity_eq h Value.Null)

let test_histogram_nulls_excluded () =
  let rel =
    Relation.create ~name:"n"
      ~schema:(Schema.create [ { Schema.name = "v"; ty = Value.T_int } ])
      (Array.init 100 (fun i -> if i < 50 then [| Value.Null |] else [| v_int i |]))
  in
  let h = Histogram.build rel "v" in
  check_int "null rows counted" 50 (Histogram.null_rows h);
  check_close 1e-9 "range over non-nulls only" 0.5
    (Histogram.selectivity_range h ~lo:None ~hi:None)

let test_histogram_bucket_count () =
  let h = Histogram.build ~buckets:10 (uniform_relation 1000) "v" in
  check_int "respects bucket budget" 10 (List.length (Histogram.buckets h));
  let tiny = Histogram.build ~buckets:250 (uniform_relation 5) "v" in
  check_bool "never more buckets than rows" true (List.length (Histogram.buckets tiny) <= 5)

let test_histogram_distinct () =
  let rel =
    Relation.create ~name:"d"
      ~schema:(Schema.create [ { Schema.name = "v"; ty = Value.T_int } ])
      (Array.init 1000 (fun i -> [| v_int (i mod 7) |]))
  in
  let h = Histogram.build rel "v" in
  check_int "distinct" 7 (Histogram.estimated_distinct h)

(* ------------------------------------------------------------------ *)
(* Distinct values                                                     *)
(* ------------------------------------------------------------------ *)

let test_distinct_frequency_profile () =
  let values = Array.map v_int [| 1; 1; 1; 2; 2; 3 |] in
  Alcotest.(check (list (pair int int))) "profile" [ (1, 1); (2, 1); (3, 1) ]
    (Distinct.frequency_profile values)

let test_distinct_gee () =
  (* All-distinct sample: GEE = sqrt(N/n) * n. *)
  let sample = Array.init 100 v_int in
  check_close 1e-6 "all distinct" (sqrt (10_000.0 /. 100.0) *. 100.0)
    (Distinct.gee ~sample ~population_size:10_000);
  (* All-same sample: GEE = 1. *)
  let same = Array.make 100 (v_int 7) in
  check_close 1e-9 "one value" 1.0 (Distinct.gee ~sample:same ~population_size:10_000)

let test_distinct_clamped () =
  (* Estimates always land in [observed distinct, population size]. *)
  let sample = Array.init 100 (fun i -> v_int (i mod 60)) in
  let gee = Distinct.gee ~sample ~population_size:150 in
  check_bool "gee within bounds" true (gee >= 60.0 && gee <= 150.0);
  let su = Distinct.scale_up ~sample ~population_size:150 in
  check_bool "scale_up within bounds" true (su >= 60.0 && su <= 150.0);
  (* Exhaustive sample: both estimators report the truth. *)
  let full = Array.init 100 v_int in
  check_close 1e-9 "gee on a census" 100.0 (Distinct.gee ~sample:full ~population_size:100);
  check_close 1e-9 "scale_up on a census" 100.0
    (Distinct.scale_up ~sample:full ~population_size:100)

let test_distinct_groups () =
  let schema =
    Schema.create
      [ { Schema.name = "a"; ty = Value.T_int }; { Schema.name = "b"; ty = Value.T_int } ]
  in
  let rel =
    Relation.create ~name:"g" ~schema
      (Array.init 100 (fun i -> [| v_int (i mod 2); v_int (i mod 3) |]))
  in
  (* 6 combined groups, all heavily repeated: GEE sees no singletons, so
     the estimate is exactly the observed 6. *)
  check_close 1e-9 "group count" 6.0
    (Distinct.estimate_groups ~sample:rel ~columns:[ "a"; "b" ] ~population_size:100_000)

(* ------------------------------------------------------------------ *)
(* Stats store                                                         *)
(* ------------------------------------------------------------------ *)

let test_store_builds_everything () =
  let catalog = chain_catalog () in
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 21) catalog in
  check_bool "histogram per column" true
    (Stats_store.histogram stats ~table:"orders" ~column:"o_status" <> None);
  check_bool "synopsis per table" true (Stats_store.synopsis stats ~root:"lineitems" <> None);
  check_bool "synopsis for leaf" true (Stats_store.synopsis stats ~root:"customers" <> None)

let test_store_root_of_expression () =
  let catalog = chain_catalog () in
  Alcotest.(check (option string)) "chain root" (Some "lineitems")
    (Stats_store.root_of_expression catalog [ "orders"; "lineitems"; "customers" ]);
  Alcotest.(check (option string)) "pair root" (Some "orders")
    (Stats_store.root_of_expression catalog [ "customers"; "orders" ]);
  Alcotest.(check (option string)) "disconnected pair has no root" None
    (Stats_store.root_of_expression catalog [ "customers"; "lineitems" ])

let test_store_synopsis_for () =
  let catalog = chain_catalog () in
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 22) catalog in
  (match Stats_store.synopsis_for stats [ "orders"; "customers" ] with
  | Some syn -> Alcotest.(check string) "rooted at orders" "orders" (Join_synopsis.root syn)
  | None -> Alcotest.fail "expected a covering synopsis");
  check_bool "no synopsis for disconnected set" true
    (Stats_store.synopsis_for stats [ "customers"; "lineitems" ] = None)

let test_single_table_synopsis () =
  let catalog = chain_catalog () in
  let syn =
    Join_synopsis.build ~follow_fks:false (Rq_math.Rng.create 25) catalog ~size:100
      ~root:"lineitems"
  in
  Alcotest.(check (list string)) "covers only the root" [ "lineitems" ]
    (Join_synopsis.tables syn);
  check_bool "does not cover joins" false (Join_synopsis.covers syn [ "lineitems"; "orders" ])

let test_store_without_fk_expansion () =
  let catalog = chain_catalog () in
  let config = { Stats_store.default_config with follow_foreign_keys = false } in
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 26) ~config catalog in
  check_bool "single-table synopsis exists" true
    (Stats_store.synopsis stats ~root:"lineitems" <> None);
  check_bool "no covering synopsis for joins" true
    (Stats_store.synopsis_for stats [ "lineitems"; "orders" ] = None)

let test_store_partial_roots () =
  let catalog = chain_catalog () in
  let config = { Stats_store.default_config with synopsis_roots = Some [ "orders" ] } in
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 23) ~config catalog in
  check_bool "requested root present" true (Stats_store.synopsis stats ~root:"orders" <> None);
  check_bool "other roots absent" true (Stats_store.synopsis stats ~root:"lineitems" = None)

let test_store_histogram_avi () =
  let catalog = chain_catalog () in
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 24) catalog in
  (* Single range conjunct: close to truth on the uniform column. *)
  let sel_half =
    Stats_store.histogram_selectivity stats ~table:"lineitems"
      (Pred.le (Expr.col "l_qty") (Expr.int 25))
  in
  check_bool "half range" true (Float.abs (sel_half -. 0.5) < 0.1);
  (* Two conjuncts multiply (the AVI assumption made observable). *)
  let p = Pred.le (Expr.col "l_qty") (Expr.int 25) in
  let joint = Stats_store.histogram_selectivity stats ~table:"lineitems" (Pred.And [ p; p ]) in
  check_close 1e-9 "AVI multiplies even identical conjuncts" (sel_half *. sel_half) joint;
  (* Unsupported shapes fall back to magic numbers. *)
  let magic =
    Stats_store.histogram_selectivity stats ~table:"lineitems"
      (Pred.eq (Expr.col "l_qty") (Expr.col "l_order"))
  in
  check_close 1e-9 "magic number" (1.0 /. 3.0) magic

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

let test_maintenance_refresh_policy () =
  let catalog = chain_catalog () in
  let m = Maintenance.create ~refresh_fraction:0.2 (Rq_math.Rng.create 31) catalog in
  check_bool "fresh at start" false (Maintenance.is_stale m);
  (* 10% of lineitems modified: not yet stale. *)
  Maintenance.record_modifications m ~table:"lineitems" 100;
  check_bool "below threshold" false (Maintenance.is_stale m);
  check_bool "no refresh below threshold" false (Maintenance.maybe_refresh m);
  (* Another 15%: crosses 20%. *)
  Maintenance.record_modifications m ~table:"lineitems" 150;
  check_bool "above threshold" true (Maintenance.is_stale m);
  check_bool "refresh happens" true (Maintenance.maybe_refresh m);
  check_int "counters reset" 0 (Maintenance.modifications_since_refresh m ~table:"lineitems")

let test_maintenance_apply_update () =
  let catalog = chain_catalog () in
  let m = Maintenance.create ~refresh_fraction:0.5 (Rq_math.Rng.create 32) catalog in
  (* Rewrite every lineitem's quantity: all 1000 rows count as modified. *)
  Maintenance.apply_update m ~table:"lineitems" (fun rows ->
      Array.map (fun tup -> [| tup.(0); tup.(1); Value.Int 1 |]) rows);
  check_int "all rows modified" 1000 (Maintenance.modifications_since_refresh m ~table:"lineitems");
  check_bool "stale" true (Maintenance.is_stale m);
  (* Stale stats still describe the old data; a refresh fixes them. *)
  let sel stats =
    match Stats_store.synopsis stats ~root:"lineitems" with
    | Some syn ->
        let k, n =
          Join_synopsis.evidence syn
            (Pred.eq (Expr.col "lineitems.l_qty") (Expr.int 1))
        in
        float_of_int k /. float_of_int n
    | None -> Alcotest.fail "synopsis missing"
  in
  let stale_view = sel (Maintenance.stats m) in
  check_bool "stale stats miss the change" true (stale_view < 0.5);
  check_bool "refresh triggers" true (Maintenance.maybe_refresh m);
  let fresh_view = sel (Maintenance.stats m) in
  Alcotest.(check (float 1e-9)) "fresh stats see the change" 1.0 fresh_view

let test_maintenance_identity_update_is_free () =
  let catalog = chain_catalog () in
  let m = Maintenance.create (Rq_math.Rng.create 33) catalog in
  Maintenance.apply_update m ~table:"orders" (fun rows -> rows);
  check_int "identity counts nothing" 0 (Maintenance.modifications_since_refresh m ~table:"orders")

let test_maintenance_empty_table () =
  (* An empty table must neither divide by zero in the staleness rule nor
     break the statistics rebuild. *)
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"id"
    (Relation.create ~name:"void"
       ~schema:(Schema.create [ { Schema.name = "id"; ty = Value.T_int } ])
       [||]);
  let m = Maintenance.create ~refresh_fraction:1.0 (Rq_math.Rng.create 34) catalog in
  check_bool "fresh at start" false (Maintenance.is_stale m);
  check_bool "no refresh when fresh" false (Maintenance.maybe_refresh m);
  (* [max 1 rows] in the policy: one modification to an empty table is
     already a full-table change. *)
  Maintenance.record_modifications m ~table:"void" 1;
  check_bool "one mod stales an empty table" true (Maintenance.is_stale m);
  check_bool "refresh succeeds on empty table" true (Maintenance.maybe_refresh m);
  check_int "counter reset" 0 (Maintenance.modifications_since_refresh m ~table:"void")

let test_maintenance_refresh_fraction_boundaries () =
  let catalog = chain_catalog () in
  Alcotest.check_raises "zero fraction rejected"
    (Invalid_argument "Maintenance.create: refresh_fraction must be positive") (fun () ->
      ignore (Maintenance.create ~refresh_fraction:0.0 (Rq_math.Rng.create 35) catalog));
  Alcotest.check_raises "negative fraction rejected"
    (Invalid_argument "Maintenance.create: refresh_fraction must be positive") (fun () ->
      ignore (Maintenance.create ~refresh_fraction:(-0.1) (Rq_math.Rng.create 35) catalog));
  (* fraction = 1.0: stale only once every row has changed. *)
  let m = Maintenance.create ~refresh_fraction:1.0 (Rq_math.Rng.create 36) catalog in
  Maintenance.record_modifications m ~table:"customers" 19;
  check_bool "19/20 rows: not yet stale" false (Maintenance.is_stale m);
  Maintenance.record_modifications m ~table:"customers" 1;
  check_bool "20/20 rows: stale" true (Maintenance.is_stale m)

let test_maintenance_record_modifications_edge_counts () =
  let catalog = chain_catalog () in
  let m = Maintenance.create (Rq_math.Rng.create 37) catalog in
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Maintenance.record_modifications: negative count") (fun () ->
      Maintenance.record_modifications m ~table:"orders" (-1));
  Maintenance.record_modifications m ~table:"orders" 0;
  check_int "zero count is a no-op" 0 (Maintenance.modifications_since_refresh m ~table:"orders");
  check_bool "still fresh" false (Maintenance.is_stale m)

(* ---- statistics versioning (the plan cache's invalidation signal) ---- *)

let test_version_monotonic_rebuild () =
  let catalog = chain_catalog () in
  let s1 = Stats_store.update_statistics (Rq_math.Rng.create 50) catalog in
  let s2 = Stats_store.update_statistics (Rq_math.Rng.create 51) catalog in
  check_bool "rebuild advances the store version" true
    (Stats_store.version s2 > Stats_store.version s1);
  (* A full rebuild redraws every sample, so every table is stamped fresh. *)
  List.iter
    (fun t ->
      check_int (t ^ " stamped with the store version") (Stats_store.version s2)
        (Stats_store.table_version s2 t))
    [ "customers"; "orders"; "lineitems" ];
  check_int "unknown table reports the store version" (Stats_store.version s2)
    (Stats_store.table_version s2 "nope")

let test_version_per_table_bump () =
  let catalog = chain_catalog () in
  let s = Stats_store.update_statistics (Rq_math.Rng.create 52) catalog in
  let orders_before = Stats_store.table_version s "orders" in
  let customers_before = Stats_store.table_version s "customers" in
  let s' = Stats_store.with_histogram s ~table:"orders" ~column:"o_status" None in
  check_bool "touched table advanced" true (Stats_store.table_version s' "orders" > orders_before);
  check_int "untouched table unchanged" customers_before (Stats_store.table_version s' "customers");
  check_bool "store version advanced" true (Stats_store.version s' > Stats_store.version s);
  check_int "copy-on-write: original untouched" orders_before (Stats_store.table_version s "orders")

let test_version_fault_injection_bumps_root () =
  let catalog = chain_catalog () in
  let s = Stats_store.update_statistics (Rq_math.Rng.create 53) catalog in
  let customers_before = Stats_store.table_version s "customers" in
  let damaged = Fault.apply (Rq_math.Rng.create 54) s [ Fault.Drop_synopsis "lineitems" ] in
  check_bool "injected root advanced" true
    (Stats_store.table_version damaged "lineitems" > Stats_store.table_version s "lineitems");
  check_int "unrelated table unchanged" customers_before
    (Stats_store.table_version damaged "customers")

(* ---- refresh over emptied tables (must degrade, not raise) ---- *)

let test_refresh_after_root_emptied () =
  let catalog = chain_catalog () in
  let m = Maintenance.create (Rq_math.Rng.create 55) catalog in
  Maintenance.apply_update m ~table:"lineitems" (fun _ -> [||]);
  Maintenance.refresh m;
  let stats = Maintenance.stats m in
  match Stats_store.synopsis stats ~root:"lineitems" with
  | None -> Alcotest.fail "synopsis should exist (empty, not absent)"
  | Some syn ->
      check_int "empty synopsis" 0 (Join_synopsis.size syn);
      let k, n = Join_synopsis.evidence syn Pred.True in
      check_int "evidence k over empty sample" 0 k;
      check_int "evidence n over empty sample" 0 n;
      (match Fault.verify_synopsis catalog syn with
      | Error e ->
          check_bool "health check flags Missing" true (e.Fault.kind = Fault.Missing)
      | Ok () -> Alcotest.fail "empty synopsis must fail the health check")

let test_refresh_after_parent_emptied () =
  (* Emptying a referenced table leaves every child row dangling; the
     lenient rebuild drops them instead of raising mid-refresh. *)
  let catalog = chain_catalog () in
  let m = Maintenance.create (Rq_math.Rng.create 56) catalog in
  Maintenance.apply_update m ~table:"customers" (fun _ -> [||]);
  Maintenance.refresh m;
  let stats = Maintenance.stats m in
  match Stats_store.synopsis stats ~root:"lineitems" with
  | None -> Alcotest.fail "synopsis should exist"
  | Some syn -> check_int "all dangling join rows dropped" 0 (Join_synopsis.size syn)

(* ---- chunk profiles (zone-map-derived physical stats) ---- *)

let test_chunk_profiles_recorded () =
  (* Three chunks of the 24-byte schema (rows_per_chunk = 5456): [k] is
     monotone across chunk boundaries (zone-clustered), [r] interleaves. *)
  let rows = 12_000 in
  let schema =
    Schema.create
      [
        { Schema.name = "k"; ty = Value.T_int };
        { Schema.name = "r"; ty = Value.T_int };
        { Schema.name = "z"; ty = Value.T_int };
      ]
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"k"
    (Relation.create ~name:"t" ~schema
       (Array.init rows (fun i -> [| v_int i; v_int (i * 7919 mod rows); v_int 0 |])));
  let stats = Stats_store.update_statistics (Rq_math.Rng.create 57) catalog in
  match Stats_store.chunk_stats stats "t" with
  | None -> Alcotest.fail "chunk profile missing for t"
  | Some p ->
      check_int "chunks" 3 p.Stats_store.chunks;
      check_int "rows" rows p.rows;
      let rel = Catalog.find_table catalog "t" in
      check_int "pages agree with the relation" (Relation.page_count rel) p.pages;
      check_bool "monotone column detected as clustered" true
        (List.mem "k" p.clustered_columns);
      check_bool "interleaved column is not" false (List.mem "r" p.clustered_columns);
      (* A constant column's zones all overlap at a point; lo = prev hi is
         still consistent with clustering (ties allowed). *)
      check_bool "constant column counts as clustered" true (List.mem "z" p.clustered_columns);
      check_bool "unknown table has no profile" true (Stats_store.chunk_stats stats "nope" = None)

(* ------------------------------------------------------------------ *)
(* Bitset / Lru / Pred_index: the evidence kernel                      *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  List.iter
    (fun len ->
      let b = Bitset.create len in
      check_int (Printf.sprintf "empty popcount len=%d" len) 0 (Bitset.popcount b);
      check_int (Printf.sprintf "full popcount len=%d" len) len
        (Bitset.popcount (Bitset.full len));
      (* lognot must respect the tail mask: no phantom bits past len. *)
      check_int (Printf.sprintf "lognot empty len=%d" len) len
        (Bitset.popcount (Bitset.lognot b));
      let every3 = Bitset.of_pred ~len (fun i -> i mod 3 = 0) in
      check_int
        (Printf.sprintf "every 3rd bit len=%d" len)
        ((len + 2) / 3)
        (Bitset.popcount every3);
      let expected = List.filter (fun i -> i mod 3 = 0) (List.init len Fun.id) in
      let seen = ref [] in
      Bitset.iter_set (fun i -> seen := i :: !seen) every3;
      Alcotest.(check (list int))
        (Printf.sprintf "iter_set len=%d" len)
        expected (List.rev !seen))
    [ 0; 1; 63; 64; 65; 130; 200 ]

let test_bitset_algebra () =
  let len = 130 in
  let a = Bitset.of_pred ~len (fun i -> i mod 2 = 0) in
  let b = Bitset.of_pred ~len (fun i -> i mod 3 = 0) in
  let both = Bitset.logand a b in
  let either = Bitset.logor a b in
  check_int "and = multiples of 6" (1 + ((len - 1) / 6)) (Bitset.popcount both);
  check_int "count_and agrees" (Bitset.popcount both) (Bitset.count_and a b);
  (* inclusion-exclusion *)
  check_int "or = a + b - and"
    (Bitset.popcount a + Bitset.popcount b - Bitset.popcount both)
    (Bitset.popcount either);
  check_bool "equal reflexive" true (Bitset.equal a a);
  check_bool "not equal" false (Bitset.equal a b);
  check_int "double negation" (Bitset.popcount a)
    (Bitset.popcount (Bitset.lognot (Bitset.lognot a)))

let test_lru_bounds_and_evicts () =
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:2 () in
  Lru.insert lru "a" 1;
  Lru.insert lru "b" 2;
  check_bool "a cached" true (Lru.find lru "a" <> None);
  (* a is now most recent; inserting c must evict b. *)
  Lru.insert lru "c" 3;
  Alcotest.(check (list string)) "b evicted" [ "b" ] !evicted;
  check_bool "a survives" true (Lru.mem lru "a");
  check_bool "b gone" false (Lru.find lru "b" <> None);
  check_int "bounded" 2 (Lru.length lru);
  check_int "evictions counted" 1 (Lru.evictions lru);
  check_bool "hits and misses counted" true (Lru.hits lru >= 1 && Lru.misses lru >= 1)

let kernel_fixture () =
  let schema =
    Schema.create
      [ { Schema.name = "q"; ty = Value.T_int }; { Schema.name = "tag"; ty = Value.T_string } ]
  in
  let rows =
    Array.init 100 (fun i ->
        [|
          (if i mod 10 = 9 then Value.Null else v_int (i mod 20));
          (if i mod 7 = 0 then Value.Null else Value.String (if i mod 2 = 0 then "even" else "odd"));
        |])
  in
  Relation.create ~name:"kernel_fixture" ~schema rows

let test_pred_index_counts () =
  let rel = kernel_fixture () in
  let idx = Pred_index.create rel in
  let sample =
    Sample.of_rows
      ~rows:(Array.of_seq (Relation.to_seq rel))
      ~schema:(Relation.schema rel) ~population_size:1000 ~name:"s"
  in
  let preds =
    [
      Pred.le (Expr.col "q") (Expr.int 10);
      Pred.And [ Pred.le (Expr.col "q") (Expr.int 10); Pred.Contains (Expr.col "tag", "ev") ];
      Pred.Or [ Pred.eq (Expr.col "q") (Expr.int 3); Pred.Contains (Expr.col "tag", "odd") ];
      Pred.Not (Pred.le (Expr.col "q") (Expr.int 10));
      Pred.True;
      Pred.False;
    ]
  in
  List.iter
    (fun pred ->
      let expected = Sample.count_matching sample pred in
      check_int ("kernel = scan: " ^ Pred.render pred) expected (Pred_index.count idx pred);
      (* second ask: served from cached bitmaps, same answer *)
      check_int ("cached: " ^ Pred.render pred) expected (Pred_index.count idx pred))
    preds;
  let stats = Pred_index.stats idx in
  check_bool "bitmaps were built" true (stats.Rq_obs.Metrics.bitmaps_built > 0);
  check_bool "cache hits recorded" true (stats.Rq_obs.Metrics.bitmap_hits > 0)

let test_pred_index_eviction () =
  let rel = kernel_fixture () in
  let idx = Pred_index.create ~capacity:2 rel in
  let evicted = ref [] in
  Pred_index.set_on_evict idx (fun key -> evicted := key :: !evicted);
  let atom i = Pred.eq (Expr.col "q") (Expr.int i) in
  List.iter (fun i -> ignore (Pred_index.count idx (atom i))) [ 1; 2; 3 ];
  check_int "one eviction" 1 (List.length !evicted);
  check_int "evictions in stats" 1 (Pred_index.stats idx).Rq_obs.Metrics.bitmap_evictions;
  (* The evicted atom re-scans and still answers correctly. *)
  check_int "evicted atom rebuilt" 5 (Pred_index.count idx (atom 1))

let test_lru_capacity_zero () =
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Lru.create: capacity must be non-negative") (fun () ->
      ignore (Lru.create ~capacity:(-1) ()));
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:0 () in
  Lru.insert lru "a" 1;
  (* A zero-capacity cache is a legal degenerate: every insert is an
     immediate eviction and every lookup a miss. *)
  Alcotest.(check (list string)) "insert evicts immediately" [ "a" ] !evicted;
  check_bool "nothing cached" true (Lru.find lru "a" = None);
  check_int "length stays zero" 0 (Lru.length lru);
  Lru.insert lru "b" 2;
  check_int "every insert counted as eviction" 2 (Lru.evictions lru);
  Alcotest.(check (list string)) "on_evict fired per insert" [ "b"; "a" ] !evicted;
  check_bool "misses counted" true (Lru.misses lru >= 1);
  check_int "no hits possible" 0 (Lru.hits lru)

let test_lru_capacity_one () =
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:1 () in
  Lru.insert lru "a" 1;
  check_int "no eviction yet" 0 (Lru.evictions lru);
  Lru.insert lru "b" 2;
  Alcotest.(check (list string)) "a evicted by b" [ "a" ] !evicted;
  check_int "one eviction" 1 (Lru.evictions lru);
  (* Replacing the resident key is an update, not an eviction. *)
  Lru.insert lru "b" 3;
  check_int "replace does not evict" 1 (Lru.evictions lru);
  check_bool "updated value served" true (Lru.find lru "b" = Some 3);
  Lru.insert lru "c" 4;
  check_int "second eviction" 2 (Lru.evictions lru);
  check_int "still bounded" 1 (Lru.length lru)

(* Regression: re-inserting a key that is already resident while the
   cache is at capacity must never evict an innocent sibling — it is an
   update plus a recency touch, nothing leaves. *)
let test_lru_reinsert_at_capacity_evicts_nothing () =
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:2 () in
  Lru.insert lru "a" 1;
  Lru.insert lru "b" 2;
  (* Full.  Re-insert the older key with a new value. *)
  Lru.insert lru "a" 10;
  Alcotest.(check (list string)) "nothing evicted" [] !evicted;
  check_int "no evictions counted" 0 (Lru.evictions lru);
  check_int "still two entries" 2 (Lru.length lru);
  check_bool "sibling survives" true (Lru.mem lru "b");
  check_bool "value updated" true (Lru.find lru "a" = Some 10);
  (* The re-insert refreshed a's recency: the next overflow victim is b. *)
  Lru.insert lru "c" 3;
  Alcotest.(check (list string)) "b is the LRU victim" [ "b" ] !evicted;
  check_bool "a still resident" true (Lru.mem lru "a")

let test_lru_remove_is_silent () =
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:2 () in
  Lru.insert lru "a" 1;
  Lru.insert lru "b" 2;
  (* Invalidation-style removal: no eviction count, no on_evict. *)
  Lru.remove lru "a";
  check_int "one entry left" 1 (Lru.length lru);
  check_int "not an eviction" 0 (Lru.evictions lru);
  Alcotest.(check (list string)) "on_evict not fired" [] !evicted;
  Lru.remove lru "missing";
  check_int "removing a stranger is a no-op" 1 (Lru.length lru);
  (* The freed slot is usable again without evicting b. *)
  Lru.insert lru "c" 3;
  check_int "no eviction on refill" 0 (Lru.evictions lru);
  check_bool "b survives" true (Lru.mem lru "b")

let test_pred_index_combined_after_eviction () =
  let rel = kernel_fixture () in
  let idx = Pred_index.create ~capacity:2 rel in
  let sample =
    Sample.of_rows
      ~rows:(Array.of_seq (Relation.to_seq rel))
      ~schema:(Relation.schema rel) ~population_size:1000 ~name:"s"
  in
  let combined =
    Pred.And [ Pred.le (Expr.col "q") (Expr.int 10); Pred.Contains (Expr.col "tag", "ev") ]
  in
  let expected = Sample.count_matching sample combined in
  check_int "combined correct when cold" expected (Pred_index.count idx combined);
  (* Force out one of the atoms the conjunction combines: the two slots
     hold its atoms, so two fresh atoms evict both. *)
  let evicted = ref [] in
  Pred_index.set_on_evict idx (fun key -> evicted := key :: !evicted);
  ignore (Pred_index.count idx (Pred.eq (Expr.col "q") (Expr.int 3)));
  ignore (Pred_index.count idx (Pred.eq (Expr.col "q") (Expr.int 4)));
  check_bool "component atoms evicted" true (List.length !evicted >= 1);
  (* Immediately after the eviction the combined predicate must still
     produce exact evidence (the missing bitmaps rebuild transparently). *)
  check_int "combined correct after eviction" expected (Pred_index.count idx combined);
  check_int "and stays correct on the cached re-ask" expected (Pred_index.count idx combined)

(* Property: for arbitrary predicates (nulls, disjunctions, negations,
   empty samples included), the kernel's bitwise evidence equals the
   row-scan count — bit for bit, first ask and cached re-ask alike. *)
let prop_schema =
  Schema.create
    [
      { Schema.name = "a"; ty = Value.T_int };
      { Schema.name = "b"; ty = Value.T_int };
      { Schema.name = "s"; ty = Value.T_string };
    ]

let gen_row =
  QCheck.Gen.(
    let int_val = frequency [ (1, return Value.Null); (4, map (fun i -> v_int i) (int_range (-5) 5)) ] in
    let str_val =
      frequency
        [ (1, return Value.Null); (4, map (fun s -> Value.String s) (oneofl [ "a"; "b"; "ab"; "ba"; "abc" ])) ]
    in
    map (fun ((a, b), s) -> [| a; b; s |]) (pair (pair int_val int_val) str_val))

let gen_atom =
  QCheck.Gen.(
    oneof
      [
        map
          (fun ((op, c), v) -> Pred.Cmp (op, Expr.col c, Expr.int v))
          (pair
             (pair (oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ]) (oneofl [ "a"; "b" ]))
             (int_range (-5) 5));
        map
          (fun (lo, hi) -> Pred.between (Expr.col "a") (Expr.int (min lo hi)) (Expr.int (max lo hi)))
          (pair (int_range (-5) 5) (int_range (-5) 5));
        map (fun sub -> Pred.Contains (Expr.col "s", sub)) (oneofl [ "a"; "b"; "ab" ]);
        (* column-to-column comparison: exercises null collapse on both sides *)
        map (fun op -> Pred.Cmp (op, Expr.col "a", Expr.col "b")) (oneofl [ Pred.Eq; Pred.Lt ]);
      ])

let rec gen_pred depth =
  if depth = 0 then gen_atom
  else
    QCheck.Gen.(
      frequency
        [
          (3, gen_atom);
          (1, return Pred.True);
          (1, return Pred.False);
          (2, map (fun ps -> Pred.And ps) (list_size (int_range 1 3) (gen_pred (depth - 1))));
          (2, map (fun ps -> Pred.Or ps) (list_size (int_range 1 3) (gen_pred (depth - 1))));
          (1, map (fun p -> Pred.Not p) (gen_pred (depth - 1)));
        ])

let prop_kernel_matches_scan =
  QCheck.Test.make ~name:"kernel evidence = row-scan evidence" ~count:500
    (QCheck.make
       ~print:(fun (rows, pred) ->
         Printf.sprintf "%d rows, pred %s" (List.length rows) (Pred.render pred))
       QCheck.Gen.(pair (list_size (int_range 0 40) gen_row) (gen_pred 3)))
    (fun (rows, pred) ->
      let rel = Relation.create ~name:"prop" ~schema:prop_schema (Array.of_list rows) in
      let sample =
        Sample.of_rows
          ~rows:(Array.of_list rows)
          ~schema:prop_schema
          ~population_size:(10 * List.length rows)
          ~name:"prop_sample"
      in
      let idx = Pred_index.create rel in
      let expected = Sample.count_matching sample pred in
      Pred_index.count idx pred = expected && Pred_index.count idx pred = expected)

let test_empty_sample_of_relation () =
  let rel =
    Relation.create ~name:"void"
      ~schema:(Schema.create [ { Schema.name = "id"; ty = Value.T_int } ])
      [||]
  in
  let s = Sample.of_relation (Rq_math.Rng.create 57) ~size:100 rel in
  check_int "empty sample" 0 (Sample.size s);
  check_int "population zero" 0 (Sample.population_size s);
  check_close 1e-9 "selectivity over nothing" 0.0 (Sample.naive_selectivity s Pred.True)

let () =
  Alcotest.run "rq_stats"
    [
      ( "sample",
        [
          Alcotest.test_case "basics" `Quick test_sample_basics;
          Alcotest.test_case "without replacement distinct" `Quick
            test_sample_without_replacement_distinct;
          Alcotest.test_case "clamps size" `Quick test_sample_clamps_without_replacement;
          Alcotest.test_case "invalid size" `Quick test_sample_invalid;
          Alcotest.test_case "statistical accuracy" `Quick test_sample_statistical_accuracy;
          Alcotest.test_case "reservoir sampling" `Quick test_sample_reservoir;
          Alcotest.test_case "reservoir uniformity" `Quick test_sample_reservoir_statistics;
        ] );
      ( "join_synopsis",
        [
          Alcotest.test_case "tables and schema" `Quick test_synopsis_tables_and_schema;
          Alcotest.test_case "rows satisfy the FK join" `Quick test_synopsis_rows_satisfy_fk_join;
          Alcotest.test_case "estimates join selectivity" `Quick
            test_synopsis_estimates_join_selectivity;
          Alcotest.test_case "dangling FK" `Quick test_synopsis_dangling_fk;
          Alcotest.test_case "unknown root" `Quick test_synopsis_unknown_root;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "full and empty ranges" `Quick test_histogram_full_range;
          Alcotest.test_case "half range" `Quick test_histogram_half_range;
          Alcotest.test_case "equality" `Quick test_histogram_equality;
          Alcotest.test_case "null handling" `Quick test_histogram_nulls_excluded;
          Alcotest.test_case "bucket budget" `Quick test_histogram_bucket_count;
          Alcotest.test_case "distinct estimate" `Quick test_histogram_distinct;
        ] );
      ( "distinct",
        [
          Alcotest.test_case "frequency profile" `Quick test_distinct_frequency_profile;
          Alcotest.test_case "GEE known cases" `Quick test_distinct_gee;
          Alcotest.test_case "clamping" `Quick test_distinct_clamped;
          Alcotest.test_case "group estimation" `Quick test_distinct_groups;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "refresh policy" `Quick test_maintenance_refresh_policy;
          Alcotest.test_case "apply_update counts and refreshes" `Quick
            test_maintenance_apply_update;
          Alcotest.test_case "identity update is free" `Quick
            test_maintenance_identity_update_is_free;
          Alcotest.test_case "empty table" `Quick test_maintenance_empty_table;
          Alcotest.test_case "refresh_fraction boundaries" `Quick
            test_maintenance_refresh_fraction_boundaries;
          Alcotest.test_case "record_modifications edge counts" `Quick
            test_maintenance_record_modifications_edge_counts;
        ] );
      ( "stats_store",
        [
          Alcotest.test_case "builds everything" `Quick test_store_builds_everything;
          Alcotest.test_case "root of expression" `Quick test_store_root_of_expression;
          Alcotest.test_case "synopsis_for" `Quick test_store_synopsis_for;
          Alcotest.test_case "partial synopsis roots" `Quick test_store_partial_roots;
          Alcotest.test_case "single-table synopsis" `Quick test_single_table_synopsis;
          Alcotest.test_case "store without FK expansion" `Quick test_store_without_fk_expansion;
          Alcotest.test_case "histogram AVI selectivity" `Quick test_store_histogram_avi;
        ] );
      ( "versioning",
        [
          Alcotest.test_case "rebuild is monotonic and stamps all tables" `Quick
            test_version_monotonic_rebuild;
          Alcotest.test_case "copy-on-write bumps one table" `Quick test_version_per_table_bump;
          Alcotest.test_case "fault injection bumps the root" `Quick
            test_version_fault_injection_bumps_root;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "refresh after root emptied" `Quick test_refresh_after_root_emptied;
          Alcotest.test_case "refresh after parent emptied" `Quick
            test_refresh_after_parent_emptied;
          Alcotest.test_case "empty relation yields empty sample" `Quick
            test_empty_sample_of_relation;
        ] );
      ( "chunk profiles",
        [ Alcotest.test_case "recorded at rebuild" `Quick test_chunk_profiles_recorded ] );
      ( "kernel",
        [
          Alcotest.test_case "bitset basics across word boundaries" `Quick test_bitset_basics;
          Alcotest.test_case "bitset algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "lru bounds and evicts" `Quick test_lru_bounds_and_evicts;
          Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
          Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "lru re-insert at capacity evicts nothing" `Quick
            test_lru_reinsert_at_capacity_evicts_nothing;
          Alcotest.test_case "lru remove is silent" `Quick test_lru_remove_is_silent;
          Alcotest.test_case "pred_index counts match scan" `Quick test_pred_index_counts;
          Alcotest.test_case "pred_index eviction" `Quick test_pred_index_eviction;
          Alcotest.test_case "pred_index combined pred after eviction" `Quick
            test_pred_index_combined_after_eviction;
          QCheck_alcotest.to_alcotest prop_kernel_matches_scan;
        ] );
    ]
