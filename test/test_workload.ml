(* Tests for rq_workload: the TPC-H-lite and star-schema generators must
   produce exactly the statistical structure the experiments rely on —
   referential integrity, clustering, constant marginals, and controllable
   joint selectivities. *)

open Rq_storage
open Rq_exec
open Rq_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_tpch =
  lazy
    (let params = { Tpch.default_params with scale_factor = 0.003 } in
     Tpch.generate (Rq_math.Rng.create 101) ~params ())

(* ------------------------------------------------------------------ *)
(* TPC-H-lite                                                          *)
(* ------------------------------------------------------------------ *)

let test_tpch_tables_exist () =
  let catalog = Lazy.force small_tpch in
  Alcotest.(check (list string)) "tables" [ "lineitem"; "orders"; "part" ]
    (Catalog.table_names catalog);
  check_int "lineitem rows" 18_000 (Relation.row_count (Catalog.find_table catalog "lineitem"));
  check_bool "orders sized to lineitem/4" true
    (Relation.row_count (Catalog.find_table catalog "orders") = 18_000 / 4)

let test_tpch_referential_integrity () =
  let catalog = Lazy.force small_tpch in
  (* The full unfiltered 3-way join must preserve lineitem's cardinality —
     which only holds if every FK value matches. *)
  let refs =
    [ Rq_optimizer.Logical.scan "lineitem"; Rq_optimizer.Logical.scan "orders";
      Rq_optimizer.Logical.scan "part" ]
  in
  check_int "FK integrity" 18_000 (Rq_optimizer.Naive.cardinality catalog refs)

let test_tpch_clustering () =
  let catalog = Lazy.force small_tpch in
  Alcotest.(check (option string)) "clustered on l_orderkey" (Some "l_orderkey")
    (Catalog.clustered_by catalog "lineitem");
  (* The heap really is sorted on l_orderkey. *)
  let rel = Catalog.find_table catalog "lineitem" in
  let pos = Schema.index_of (Relation.schema rel) "l_orderkey" in
  let sorted = ref true in
  let prev = ref Value.Null in
  Relation.iter
    (fun _ tup ->
      if (not (Value.is_null !prev)) && Value.compare tup.(pos) !prev < 0 then sorted := false;
      prev := tup.(pos))
    rel;
  check_bool "physically sorted" true !sorted

let test_tpch_physical_design () =
  let catalog = Lazy.force small_tpch in
  List.iter
    (fun (table, column) ->
      check_bool
        (Printf.sprintf "index on %s.%s" table column)
        true
        (Catalog.find_index catalog ~table ~column <> None))
    [
      ("lineitem", "l_shipdate"); ("lineitem", "l_receiptdate"); ("lineitem", "l_partkey");
      ("lineitem", "l_orderkey"); ("orders", "o_orderkey"); ("part", "p_partkey");
    ]

let test_tpch_exp1_selectivity_profile () =
  let catalog = Lazy.force small_tpch in
  (* The offset sweep covers the paper's 0-0.6% range, peaking near offset
     30 and vanishing by offset ~90. *)
  let sel o = Tpch.exp1_selectivity catalog ~offset:o in
  check_bool "peak above 0.4%" true (sel 30 > 0.004);
  check_bool "peak below 0.9%" true (sel 30 < 0.009);
  check_bool "falls with offset" true (sel 60 < sel 30 && sel 80 < sel 60);
  check_bool "vanishes" true (sel 120 = 0.0)

let test_tpch_exp1_marginals_constant () =
  (* The defining property: each single predicate's marginal selectivity is
     unchanged by the offset; only the overlap (joint) moves. *)
  let catalog = Lazy.force small_tpch in
  let rel = Catalog.find_table catalog "lineitem" in
  let schema = Relation.schema rel in
  let w0, w1 = Tpch.ship_window in
  let receipt_marginal offset =
    let pred =
      Pred.between (Expr.col "l_receiptdate")
        (Expr.Add_days (Expr.Const w0, offset))
        (Expr.Add_days (Expr.Const w1, offset))
    in
    float_of_int (Relation.filter_count rel (Pred.compile schema pred))
    /. float_of_int (Relation.row_count rel)
  in
  let m30 = receipt_marginal 30 and m60 = receipt_marginal 60 and m90 = receipt_marginal 90 in
  check_bool "marginals within 25% of each other" true
    (let lo = Float.min m30 (Float.min m60 m90) and hi = Float.max m30 (Float.max m60 m90) in
     hi < lo *. 1.25)

let test_tpch_exp2_marginal_constant () =
  let catalog = Lazy.force small_tpch in
  let part = Catalog.find_table catalog "part" in
  let schema = Relation.schema part in
  let count bucket =
    Relation.filter_count part
      (Pred.compile schema (Pred.eq (Expr.col "p_bucket") (Expr.int bucket)))
  in
  check_int "bucket 0 size" (count 0) (count 500);
  check_int "bucket 999 size" (count 0) (count 999)

let test_tpch_exp2_popularity_ramp () =
  let catalog = Lazy.force small_tpch in
  let sel b = Tpch.exp2_selectivity catalog ~bucket:b in
  check_bool "hottest bucket well above coldest" true (sel 999 > 5.0 *. sel 0);
  check_bool "sweep covers the crossover region" true (sel 0 < 0.002 && sel 999 > 0.004)

let test_tpch_cost_scale () =
  let catalog = Lazy.force small_tpch in
  Alcotest.(check (float 1e-9)) "6M / 18k" (6_000_000.0 /. 18_000.0) (Tpch.cost_scale catalog)

(* ------------------------------------------------------------------ *)
(* Star schema                                                         *)
(* ------------------------------------------------------------------ *)

let star_with j =
  let params = { Star.default_params with fact_rows = 40_000; join_fraction = j } in
  Star.generate (Rq_math.Rng.create 102) ~params ()

let test_star_structure () =
  let catalog = star_with 0.01 in
  Alcotest.(check (list string)) "tables" [ "dim1"; "dim2"; "dim3"; "fact" ]
    (Catalog.table_names catalog);
  check_int "fact rows" 40_000 (Relation.row_count (Catalog.find_table catalog "fact"));
  List.iter
    (fun dim ->
      check_int (dim ^ " rows") 1000 (Relation.row_count (Catalog.find_table catalog dim));
      check_bool ("fk index for " ^ dim) true
        (Catalog.fk_edge catalog ~from_table:"fact" ~to_table:dim <> None))
    [ "dim1"; "dim2"; "dim3" ]

let test_star_dim_filter_exact_tenth () =
  let catalog = star_with 0.01 in
  let dim = Catalog.find_table catalog "dim1" in
  let schema = Relation.schema dim in
  for v = 0 to 9 do
    check_int
      (Printf.sprintf "filter value %d" v)
      100
      (Relation.filter_count dim
         (Pred.compile schema (Pred.eq (Expr.col "d_filter") (Expr.int v))))
  done

let test_star_marginals_are_ten_percent () =
  (* Join fraction of the fact table with ONE filtered dimension is always
     ~10%, independent of the joint parameter — this is what blinds the
     histogram estimator. *)
  List.iter
    (fun j ->
      let catalog = star_with j in
      let refs =
        [
          Rq_optimizer.Logical.scan "fact";
          Rq_optimizer.Logical.scan ~pred:(Pred.eq (Expr.col "d_filter") (Expr.int 0)) "dim1";
        ]
      in
      let marginal = Rq_optimizer.Naive.selectivity catalog refs in
      check_bool
        (Printf.sprintf "marginal %.4f at joint %.3f" marginal j)
        true
        (Float.abs (marginal -. 0.1) < 0.01))
    [ 0.0; 0.05; 0.1 ]

let test_star_joint_matches_parameter () =
  List.iter
    (fun j ->
      let catalog = star_with j in
      let joint = Star.true_selectivity catalog in
      check_bool
        (Printf.sprintf "joint %.4f targets %.3f" joint j)
        true
        (Float.abs (joint -. j) < 0.01))
    [ 0.0; 0.02; 0.1 ]

let test_star_invalid_params () =
  check_bool "fraction above 10% rejected" true
    (try
       ignore (Star.generate (Rq_math.Rng.create 1) ~params:{ Star.default_params with join_fraction = 0.2 } ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "rq_workload"
    [
      ( "tpch",
        [
          Alcotest.test_case "tables and sizes" `Quick test_tpch_tables_exist;
          Alcotest.test_case "referential integrity" `Quick test_tpch_referential_integrity;
          Alcotest.test_case "clustering" `Quick test_tpch_clustering;
          Alcotest.test_case "physical design" `Quick test_tpch_physical_design;
          Alcotest.test_case "exp1 selectivity profile" `Quick test_tpch_exp1_selectivity_profile;
          Alcotest.test_case "exp1 marginals constant" `Quick test_tpch_exp1_marginals_constant;
          Alcotest.test_case "exp2 marginal constant" `Quick test_tpch_exp2_marginal_constant;
          Alcotest.test_case "exp2 popularity ramp" `Quick test_tpch_exp2_popularity_ramp;
          Alcotest.test_case "cost scale" `Quick test_tpch_cost_scale;
        ] );
      ( "star",
        [
          Alcotest.test_case "structure" `Quick test_star_structure;
          Alcotest.test_case "filter splits dims into tenths" `Quick
            test_star_dim_filter_exact_tenth;
          Alcotest.test_case "marginals pinned at 10%" `Quick test_star_marginals_are_ten_percent;
          Alcotest.test_case "joint tracks the parameter" `Quick test_star_joint_matches_parameter;
          Alcotest.test_case "parameter validation" `Quick test_star_invalid_params;
        ] );
    ]
