(* Tests for rq_core: priors, posteriors, confidence thresholds, the robust
   estimator, and the monotone cost-transfer machinery. *)

open Rq_core
open Rq_math

let check_bool = Alcotest.(check bool)
let check_close tolerance = Alcotest.(check (float tolerance))

(* ------------------------------------------------------------------ *)
(* Prior                                                               *)
(* ------------------------------------------------------------------ *)

let test_prior_shapes () =
  let j = Prior.to_beta Prior.Jeffreys in
  check_close 1e-12 "Jeffreys alpha" 0.5 j.Beta.alpha;
  check_close 1e-12 "Jeffreys beta" 0.5 j.Beta.beta;
  let u = Prior.to_beta Prior.Uniform in
  check_close 1e-12 "uniform alpha" 1.0 u.Beta.alpha;
  check_close 1e-12 "uniform beta" 1.0 u.Beta.beta;
  check_bool "default is Jeffreys" true (Prior.default = Prior.Jeffreys)

let test_prior_informed () =
  match Prior.of_mean_strength ~mean:0.2 ~strength:10.0 with
  | Prior.Informed b ->
      check_close 1e-12 "alpha" 2.0 b.Beta.alpha;
      check_close 1e-12 "beta" 8.0 b.Beta.beta;
      check_close 1e-12 "mean preserved" 0.2 (Beta.mean b)
  | _ -> Alcotest.fail "expected Informed"

let test_prior_fit_from_selectivities () =
  (* Recover a known Beta(2, 8) from its own moments. *)
  let target = Beta.create ~alpha:2.0 ~beta:8.0 in
  let mean = Beta.mean target and variance = Beta.variance target in
  (* Two points carrying exactly those moments. *)
  let sd = sqrt variance in
  match Prior.fit_from_selectivities [ mean -. sd; mean +. sd ] with
  | Ok (Prior.Informed fitted) ->
      check_close 1e-6 "alpha recovered" 2.0 fitted.Beta.alpha;
      check_close 1e-6 "beta recovered" 8.0 fitted.Beta.beta
  | Ok _ -> Alcotest.fail "expected an informed prior"
  | Error e -> Alcotest.fail e

let test_prior_fit_degenerate () =
  check_bool "too few values" true (Result.is_error (Prior.fit_from_selectivities [ 0.5 ]));
  check_bool "identical values" true
    (Result.is_error (Prior.fit_from_selectivities [ 0.3; 0.3; 0.3 ]));
  check_bool "boundary values filtered" true
    (Result.is_error (Prior.fit_from_selectivities [ 0.0; 1.0; 0.5 ]));
  (* Near-boundary pairs fit to an extremely weak prior but stay valid
     (variance < mean(1-mean) is automatic for points inside (0,1)). *)
  match Prior.fit_from_selectivities [ 0.001; 0.999 ] with
  | Ok (Prior.Informed b) -> check_bool "weak prior" true (b.Beta.alpha +. b.Beta.beta < 0.1)
  | _ -> Alcotest.fail "expected a (weak) informed prior"

let test_prior_informed_invalid () =
  Alcotest.check_raises "mean out of range"
    (Invalid_argument "Prior.of_mean_strength: mean must be in (0,1)") (fun () ->
      ignore (Prior.of_mean_strength ~mean:1.0 ~strength:2.0))

(* ------------------------------------------------------------------ *)
(* Posterior                                                           *)
(* ------------------------------------------------------------------ *)

let test_posterior_paper_example () =
  (* Paper Sec. 3.4: 10 of 100, Jeffreys. *)
  let p = Posterior.infer ~successes:10 ~trials:100 () in
  check_close 5e-4 "T=20%" 0.078 (Posterior.quantile p 0.20);
  check_close 5e-4 "T=50%" 0.101 (Posterior.quantile p 0.50);
  check_close 5e-4 "T=80%" 0.128 (Posterior.quantile p 0.80);
  Alcotest.(check (option (pair int int))) "evidence recorded" (Some (10, 100))
    (Posterior.evidence p)

let test_posterior_prior_insensitivity () =
  (* Figure 4's message: at realistic sample sizes the prior hardly
     matters. *)
  let diff n k =
    let j = Posterior.infer ~prior:Prior.Jeffreys ~successes:k ~trials:n () in
    let u = Posterior.infer ~prior:Prior.Uniform ~successes:k ~trials:n () in
    Float.abs (Posterior.quantile j 0.5 -. Posterior.quantile u 0.5)
  in
  check_bool "n=100 within half a point" true (diff 100 10 < 0.005);
  check_bool "n=500 within a tenth of a point" true (diff 500 50 < 0.001);
  check_bool "sample size matters more than prior" true (diff 100 10 > diff 500 50)

let test_posterior_spread_shrinks_with_n () =
  let sd n k = Posterior.std_dev (Posterior.infer ~successes:k ~trials:n ()) in
  check_bool "n=500 tighter than n=100" true (sd 500 50 < sd 100 10)

let test_posterior_of_distribution () =
  let p = Posterior.of_distribution (Beta.create ~alpha:2.0 ~beta:2.0) in
  check_bool "no evidence" true (Posterior.evidence p = None);
  check_close 1e-9 "symmetric median" 0.5 (Posterior.quantile p 0.5)

(* ------------------------------------------------------------------ *)
(* Confidence                                                          *)
(* ------------------------------------------------------------------ *)

let test_confidence_construction () =
  check_close 1e-12 "percent roundtrip" 80.0
    (Confidence.to_percent (Confidence.of_percent 80.0));
  check_close 1e-12 "fraction roundtrip" 0.35
    (Confidence.to_fraction (Confidence.of_fraction 0.35));
  Alcotest.check_raises "0 rejected"
    (Invalid_argument "Confidence.of_fraction: must be strictly between 0 and 1") (fun () ->
      ignore (Confidence.of_percent 0.0));
  Alcotest.check_raises "100 rejected"
    (Invalid_argument "Confidence.of_fraction: must be strictly between 0 and 1") (fun () ->
      ignore (Confidence.of_percent 100.0))

let test_confidence_policies () =
  check_close 1e-12 "conservative" 95.0
    (Confidence.to_percent (Confidence.of_policy Confidence.Conservative));
  check_close 1e-12 "moderate" 80.0
    (Confidence.to_percent (Confidence.of_policy Confidence.Moderate));
  check_close 1e-12 "aggressive" 50.0
    (Confidence.to_percent (Confidence.of_policy Confidence.Aggressive));
  check_bool "string roundtrip" true
    (Confidence.policy_of_string "Conservative" = Ok Confidence.Conservative);
  check_bool "unknown policy" true (Result.is_error (Confidence.policy_of_string "yolo"))

let test_confidence_resolution () =
  let setting = { Confidence.system_default = Confidence.of_percent 95.0 } in
  check_close 1e-12 "system default applies" 95.0
    (Confidence.to_percent (Confidence.resolve setting));
  check_close 1e-12 "hint overrides" 20.0
    (Confidence.to_percent (Confidence.resolve ~query_hint:(Confidence.of_percent 20.0) setting));
  check_close 1e-12 "shipped default is moderate" 80.0
    (Confidence.to_percent (Confidence.resolve Confidence.default_setting))

(* ------------------------------------------------------------------ *)
(* Robust estimator                                                    *)
(* ------------------------------------------------------------------ *)

let estimator_at percent =
  Robust_estimator.create ~confidence:(Confidence.of_percent percent) ()

let test_estimator_basics () =
  let e = estimator_at 80.0 in
  let est = Robust_estimator.estimate e ~successes:10 ~trials:100 in
  check_close 5e-4 "matches posterior quantile" 0.128 est;
  check_close 1e-9 "ML baseline" 0.1
    (Robust_estimator.maximum_likelihood_estimate ~successes:10 ~trials:100);
  check_close 1e-9 "posterior-mean baseline" (10.5 /. 101.0)
    (Robust_estimator.expected_value_estimate ~successes:10 ~trials:100 ())

let test_estimator_zero_hits_still_positive () =
  (* k = 0 must not produce a zero estimate: the posterior keeps mass on
     positive selectivities (the behaviour behind the paper's
     "self-adjusting" small-sample effect). *)
  let est = Robust_estimator.estimate (estimator_at 50.0) ~successes:0 ~trials:50 in
  check_bool "strictly positive" true (est > 0.0);
  let tighter = Robust_estimator.estimate (estimator_at 50.0) ~successes:0 ~trials:1000 in
  check_bool "more evidence, smaller estimate" true (tighter < est)

let prop_estimate_monotone_in_threshold =
  QCheck.Test.make ~name:"estimate monotone in confidence threshold" ~count:200
    QCheck.(triple (int_range 1 1000) (float_range 0.02 0.98) (float_range 0.02 0.98))
    (fun (n, t1, t2) ->
      let k = n / 3 in
      let est t = Robust_estimator.estimate (estimator_at (100.0 *. t)) ~successes:k ~trials:n in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      est lo <= est hi +. 1e-12)

let prop_estimate_monotone_in_evidence =
  QCheck.Test.make ~name:"estimate monotone in observed hits" ~count:50
    QCheck.(pair (int_range 2 200) (float_range 0.05 0.95))
    (fun (n, t) ->
      let est k = Robust_estimator.estimate (estimator_at (100.0 *. t)) ~successes:k ~trials:n in
      let increasing = ref true in
      for k = 1 to n - 1 do
        if est k < est (k - 1) -. 1e-12 then increasing := false
      done;
      !increasing)

let prop_estimate_within_unit_interval =
  QCheck.Test.make ~name:"estimate lands in [0,1]" ~count:300
    QCheck.(triple (int_range 1 300) (float_range 0.01 0.99) (float_range 0.0 1.0))
    (fun (n, t, kf) ->
      let k = int_of_float (kf *. float_of_int n) in
      let est = Robust_estimator.estimate (estimator_at (100.0 *. t)) ~successes:k ~trials:n in
      est >= 0.0 && est <= 1.0)

let test_magic_distribution () =
  check_close 1e-9 "magic mean is the classic 10%" 0.1
    (Beta.mean Robust_estimator.magic_distribution);
  let conservative = Robust_estimator.estimate_no_statistics (estimator_at 95.0) in
  let aggressive = Robust_estimator.estimate_no_statistics (estimator_at 20.0) in
  check_bool "magic number moves with the threshold" true (conservative > aggressive);
  check_close 1e-9 "plain magic constant" 0.1 Robust_estimator.magic_selectivity

(* ------------------------------------------------------------------ *)
(* Cost transfer                                                       *)
(* ------------------------------------------------------------------ *)

let linear_cost ~fixed ~slope s = fixed +. (slope *. s)

let test_cost_transfer_paper_numbers () =
  (* Sec. 3.1: k=50 of n=200; Plan 1 median 30.2, 80th pct 33.5; Plan 2
     median 31.5, 80th pct 31.9. *)
  let posterior = Posterior.infer ~successes:50 ~trials:200 () in
  let plan1 = linear_cost ~fixed:(-0.85) ~slope:124.0 in
  let plan2 = linear_cost ~fixed:27.74 ~slope:15.0 in
  let at plan t =
    Cost_transfer.cost_percentile ~cost_of_selectivity:plan posterior
      (Confidence.of_percent t)
  in
  check_close 0.1 "plan1 median" 30.2 (at plan1 50.0);
  check_close 0.1 "plan1 80th" 33.5 (at plan1 80.0);
  check_close 0.1 "plan2 median" 31.5 (at plan2 50.0);
  check_close 0.1 "plan2 80th" 31.9 (at plan2 80.0)

let prop_cost_transfer_equivalence =
  (* The Section-3.1.1 lemma: inverting the selectivity cdf then costing
     once equals inverting the explicit cost cdf. *)
  QCheck.Test.make ~name:"fast path equals explicit cost-cdf inversion" ~count:100
    QCheck.(quad (int_range 1 300) (int_range 0 300) (float_range 0.05 0.95)
              (pair (float_range 0.0 50.0) (float_range 0.1 200.0)))
    (fun (n, k_raw, t, (fixed, slope)) ->
      let k = min k_raw n in
      let posterior = Posterior.infer ~successes:k ~trials:n () in
      let g = linear_cost ~fixed ~slope in
      let fast =
        Cost_transfer.cost_percentile ~cost_of_selectivity:g posterior
          (Confidence.of_percent (100.0 *. t))
      in
      let explicit = Cost_transfer.cost_cdf_inverse ~cost_of_selectivity:g posterior t in
      Float.abs (fast -. explicit) < 1e-4 *. Float.max 1.0 (Float.abs fast))

let test_cost_cdf_monotone () =
  let posterior = Posterior.infer ~successes:20 ~trials:100 () in
  let g = linear_cost ~fixed:5.0 ~slope:100.0 in
  let prev = ref (-1.0) in
  for i = 0 to 50 do
    let c = 5.0 +. (2.0 *. float_of_int i) in
    let v = Cost_transfer.cost_cdf ~cost_of_selectivity:g posterior c in
    check_bool "non-decreasing" true (v >= !prev -. 1e-12);
    prev := v
  done

let test_expected_cost_linear () =
  (* For linear g, E[g(s)] = g(E[s]) exactly. *)
  let posterior = Posterior.infer ~successes:30 ~trials:100 () in
  let fixed = 7.0 and slope = 40.0 in
  let expected = fixed +. (slope *. Posterior.mean posterior) in
  check_close 1e-3 "linearity of expectation" expected
    (Cost_transfer.expected_cost ~cost_of_selectivity:(linear_cost ~fixed ~slope) posterior)

let test_expected_cost_jensen () =
  (* For convex g, E[g(s)] >= g(E[s]): the gap the least-expected-cost
     papers exploit. *)
  let posterior = Posterior.infer ~successes:30 ~trials:100 () in
  let g s = s *. s *. 100.0 in
  let at_mean = g (Posterior.mean posterior) in
  let expectation = Cost_transfer.expected_cost ~cost_of_selectivity:g posterior in
  check_bool "Jensen gap" true (expectation > at_mean)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rq_core"
    [
      ( "prior",
        [
          Alcotest.test_case "shapes" `Quick test_prior_shapes;
          Alcotest.test_case "informed prior" `Quick test_prior_informed;
          Alcotest.test_case "informed validation" `Quick test_prior_informed_invalid;
          Alcotest.test_case "fit from workload" `Quick test_prior_fit_from_selectivities;
          Alcotest.test_case "fit degenerate inputs" `Quick test_prior_fit_degenerate;
        ] );
      ( "posterior",
        [
          Alcotest.test_case "paper example (Sec. 3.4)" `Quick test_posterior_paper_example;
          Alcotest.test_case "prior insensitivity (Fig. 4)" `Quick
            test_posterior_prior_insensitivity;
          Alcotest.test_case "spread shrinks with n" `Quick test_posterior_spread_shrinks_with_n;
          Alcotest.test_case "external distribution" `Quick test_posterior_of_distribution;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "construction" `Quick test_confidence_construction;
          Alcotest.test_case "policies" `Quick test_confidence_policies;
          Alcotest.test_case "resolution" `Quick test_confidence_resolution;
        ] );
      ( "robust_estimator",
        [
          Alcotest.test_case "basics" `Quick test_estimator_basics;
          Alcotest.test_case "zero hits stay positive" `Quick
            test_estimator_zero_hits_still_positive;
          Alcotest.test_case "magic distribution" `Quick test_magic_distribution;
        ]
        @ qcheck
            [
              prop_estimate_monotone_in_threshold;
              prop_estimate_monotone_in_evidence;
              prop_estimate_within_unit_interval;
            ] );
      ( "cost_transfer",
        [
          Alcotest.test_case "paper numbers (Sec. 3.1)" `Quick test_cost_transfer_paper_numbers;
          Alcotest.test_case "cost cdf monotone" `Quick test_cost_cdf_monotone;
          Alcotest.test_case "expected cost of linear g" `Quick test_expected_cost_linear;
          Alcotest.test_case "Jensen gap for convex g" `Quick test_expected_cost_jensen;
        ]
        @ qcheck [ prop_cost_transfer_equivalence ] );
    ]
