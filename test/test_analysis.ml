(* Tests for rq_analysis: the Section-5 analytical model and the figure
   generators must reproduce every number the paper states for them. *)

open Rq_core
open Rq_analysis

let check_bool = Alcotest.(check bool)
let check_close tolerance = Alcotest.(check (float tolerance))

let confidence t = Confidence.of_percent t

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_crossover () =
  (* Sec. 5.1: pc = (f1 - f2)/((v2 - v1) N) ~ 0.14%. *)
  check_close 1e-5 "paper crossover" 0.00143 (Model.crossover Model.paper_model);
  check_bool "high-crossover variant ~5.2%" true
    (let pc = Model.crossover Model.high_crossover_model in
     pc > 0.045 && pc < 0.06)

let test_plan_costs_linear () =
  let m = Model.paper_model in
  check_close 1e-9 "stable at 0" 35.0
    (Model.plan_execution_cost m m.Model.stable ~selectivity:0.0);
  check_close 1e-9 "risky at 0" 5.0 (Model.plan_execution_cost m m.Model.risky ~selectivity:0.0);
  check_close 1e-6 "risky at 1%" (5.0 +. (3.5e-3 *. 0.01 *. 6e6))
    (Model.plan_execution_cost m m.Model.risky ~selectivity:0.01)

let test_oracle_cost () =
  let m = Model.paper_model in
  let pc = Model.crossover m in
  check_close 1e-9 "below crossover: risky"
    (Model.plan_execution_cost m m.Model.risky ~selectivity:(pc /. 2.0))
    (Model.oracle_cost m ~selectivity:(pc /. 2.0));
  check_close 1e-9 "above crossover: stable"
    (Model.plan_execution_cost m m.Model.stable ~selectivity:(pc *. 3.0))
    (Model.oracle_cost m ~selectivity:(pc *. 3.0))

let test_choice_table_threshold_structure () =
  (* For every threshold there is a cut k*: risky for k < k*, stable
     after — because the estimate is monotone in k. *)
  let choices = Model.choice_table Model.paper_model ~sample_size:1000 ~confidence:(confidence 50.0) in
  let first_stable = ref (Array.length choices) in
  Array.iteri (fun k c -> if c = Model.Stable && !first_stable > k then first_stable := k) choices;
  Array.iteri
    (fun k c ->
      if k < !first_stable then check_bool "risky below the cut" true (c = Model.Risky)
      else check_bool "stable above the cut" true (c = Model.Stable))
    choices

let test_t95_never_risky () =
  (* Sec. 5.2.1: at T=95% with n=1000, even k=0 cannot clear the bar, so
     the optimizer never selects the risky plan. *)
  let choices = Model.choice_table Model.paper_model ~sample_size:1000 ~confidence:(confidence 95.0) in
  Array.iter (fun c -> check_bool "always stable" true (c = Model.Stable)) choices;
  check_close 1e-12 "probability of risky is 0" 0.0
    (Model.risky_probability Model.paper_model ~sample_size:1000 ~confidence:(confidence 95.0)
       ~selectivity:0.0005)

let test_expected_cost_limits () =
  let m = Model.paper_model in
  (* At p = 0 and T = 50%, a 1000-tuple sample almost surely shows k = 0,
     the estimate is far below the crossover, and the risky plan runs at
     its fixed cost of 5. *)
  check_close 0.01 "fast at zero selectivity" 5.0
    (Model.expected_cost m ~sample_size:1000 ~confidence:(confidence 50.0) ~selectivity:0.0);
  (* At T = 95% the stable plan's cost is paid regardless. *)
  check_close 0.01 "flat at T=95" 35.0
    (Model.expected_cost m ~sample_size:1000 ~confidence:(confidence 95.0) ~selectivity:0.0)

let test_low_threshold_overestimates_risk () =
  (* Figure 5's message: at high selectivity (1%), low thresholds keep
     gambling on the risky plan and pay for it. *)
  let m = Model.paper_model in
  let cost t = Model.expected_cost m ~sample_size:1000 ~confidence:(confidence t) ~selectivity:0.01 in
  check_bool "T=5% much worse than T=95% at 1%" true (cost 5.0 > cost 95.0 +. 1.0)

let test_risky_probability_monotone_in_threshold () =
  let m = Model.paper_model in
  let risky t =
    Model.risky_probability m ~sample_size:1000 ~confidence:(confidence t) ~selectivity:0.0015
  in
  check_bool "raising T reduces risk-taking" true
    (risky 5.0 >= risky 50.0 && risky 50.0 >= risky 95.0)

let test_workload_tradeoff_shape () =
  (* Figure 6: stddev strictly decreasing in T; mean minimized at a
     moderate threshold (the paper finds 80%). *)
  let selectivities = Figures.default_workload_selectivities in
  let summary t =
    Model.cost_over_workload Model.paper_model ~sample_size:1000 ~confidence:(confidence t)
      ~selectivities
  in
  let s5 = summary 5.0 and s20 = summary 20.0 and s50 = summary 50.0 in
  let s80 = summary 80.0 and s95 = summary 95.0 in
  let sds = List.map (fun s -> s.Rq_math.Summary.std_dev) [ s5; s20; s50; s80; s95 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_bool "stddev decreases with T" true (decreasing sds);
  check_bool "T=80 beats the extremes on mean" true
    (s80.Rq_math.Summary.mean < s5.Rq_math.Summary.mean
    && s80.Rq_math.Summary.mean < s95.Rq_math.Summary.mean);
  check_bool "T=80 is the paper's winner" true
    (List.for_all
       (fun s -> s80.Rq_math.Summary.mean <= s.Rq_math.Summary.mean +. 1e-9)
       [ s5; s20; s50; s95 ])

let test_sample_size_improves_cost () =
  (* Figures 7/12: tiny samples (50, 100) have so spread-out a posterior
     that the risky plan is never chosen — flat, safe, mediocre (the
     paper's "self-adjusting" behaviour).  From 250 tuples up, both the
     mean and the variability improve monotonically with sample size. *)
  let summary n =
    Model.cost_over_workload Model.paper_model ~sample_size:n ~confidence:Confidence.median
      ~selectivities:Figures.default_workload_selectivities
  in
  let tiny = summary 50 in
  check_bool "n=50 never gambles: negligible variance" true (tiny.Rq_math.Summary.std_dev < 0.5);
  Array.iter
    (fun c -> check_bool "n=50 always stable" true (c = Model.Stable))
    (Model.choice_table Model.paper_model ~sample_size:50 ~confidence:Confidence.median);
  let m250 = summary 250 and m500 = summary 500 and m1000 = summary 1000 in
  let m2500 = summary 2500 in
  check_bool "mean improves 250 -> 500 -> 1000 -> 2500" true
    (m250.Rq_math.Summary.mean > m500.Rq_math.Summary.mean
    && m500.Rq_math.Summary.mean > m1000.Rq_math.Summary.mean
    && m1000.Rq_math.Summary.mean > m2500.Rq_math.Summary.mean);
  check_bool "stddev improves too" true
    (m250.Rq_math.Summary.std_dev > m500.Rq_math.Summary.std_dev
    && m500.Rq_math.Summary.std_dev > m1000.Rq_math.Summary.std_dev)

let test_high_crossover_insensitive_to_threshold () =
  (* Figure 8: with the crossover at ~5.2%, all thresholds perform about
     the same. *)
  let m = Model.high_crossover_model in
  let cost t s = Model.expected_cost m ~sample_size:1000 ~confidence:(confidence t) ~selectivity:s in
  List.iter
    (fun s ->
      let spread =
        List.fold_left
          (fun (lo, hi) t ->
            let c = cost t s in
            (Float.min lo c, Float.max hi c))
          (infinity, neg_infinity) [ 5.0; 50.0; 95.0 ]
      in
      let lo, hi = spread in
      check_bool
        (Printf.sprintf "spread at %.0f%% below 20%%" (100.0 *. s))
        true
        (hi -. lo < 0.2 *. lo))
    [ 0.01; 0.10; 0.15 ]

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_estimation_rules () =
  (* ML with k=0 estimates exactly 0, so it always gambles on empty
     evidence; the posterior rules never estimate 0. *)
  let ml = Model.choice_table_rule Model.paper_model ~sample_size:200 ~rule:Model.Maximum_likelihood in
  check_bool "ML gambles at k=0" true (ml.(0) = Model.Risky);
  let rule_summary rule =
    Model.cost_over_workload_rule Model.paper_model ~sample_size:1000 ~rule
      ~selectivities:Figures.default_workload_selectivities
  in
  (* Each fixed rule lands on a single point; the threshold family spans a
     frontier that weakly dominates it on the stddev axis at equal means. *)
  let lec = rule_summary Model.Posterior_mean in
  let matching_threshold =
    rule_summary (Model.At_confidence (Rq_core.Confidence.of_percent 80.0))
  in
  check_bool "LEC coincides with a frontier point (T=80 here)" true
    (Float.abs (lec.Rq_math.Summary.mean -. matching_threshold.Rq_math.Summary.mean) < 0.5
    && Float.abs (lec.Rq_math.Summary.std_dev -. matching_threshold.Rq_math.Summary.std_dev) < 0.5)

let test_fig1_crossover_at_26 () =
  (* The running example's plans tie at ~26% selectivity (Fig. 1). *)
  let diff s = Figures.example_plan_1 s -. Figures.example_plan_2 s in
  check_bool "plan 1 cheaper below" true (diff 0.20 < 0.0);
  check_bool "plan 2 cheaper above" true (diff 0.32 > 0.0);
  check_bool "tie near 26%" true (Float.abs (diff 0.262) < 0.5)

let test_fig3_confidence_crossover_at_65 () =
  (* Fig. 3: Plan 1 preferred below T~65%, Plan 2 above. *)
  check_bool "T=50 prefers plan 1" true (Figures.fig3_preferred_plan (confidence 50.0) = `Plan1);
  check_bool "T=60 prefers plan 1" true (Figures.fig3_preferred_plan (confidence 60.0) = `Plan1);
  check_bool "T=70 prefers plan 2" true (Figures.fig3_preferred_plan (confidence 70.0) = `Plan2);
  check_bool "T=80 prefers plan 2" true (Figures.fig3_preferred_plan (confidence 80.0) = `Plan2)

let test_fig2_densities_shape () =
  (* Plan 2's cost density is much more concentrated than Plan 1's: its
     peak density is higher. *)
  let peak series =
    List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 series.Figures.points
  in
  match Figures.fig2_cost_pdf () with
  | [ p1; p2 ] -> check_bool "plan 2 more peaked" true (peak p2 > 2.0 *. peak p1)
  | _ -> Alcotest.fail "expected two series"

let test_fig4_series_present () =
  let series = Figures.fig4_prior_comparison () in
  Alcotest.(check int) "four posterior curves" 4 (List.length series);
  (* Same-evidence curves with different priors nearly coincide; the
     n=500 curves are more peaked than the n=100 ones. *)
  let peak s = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 s.Figures.points in
  match series with
  | [ u100; j100; u500; j500 ] ->
      check_bool "prior barely matters" true
        (Float.abs (peak u100 -. peak j100) < 0.1 *. peak j100);
      check_bool "sample size matters" true (peak j500 > 1.5 *. peak j100);
      check_bool "and for uniform too" true (peak u500 > 1.5 *. peak u100)
  | _ -> Alcotest.fail "series order"

let test_figure_series_sizes () =
  Alcotest.(check int) "fig5 has 5 thresholds" 5 (List.length (Figures.fig5_confidence_sweep ()));
  Alcotest.(check int) "fig6 has 5 points" 5 (List.length (Figures.fig6_tradeoff ()));
  Alcotest.(check int) "fig7 has 5 sample sizes" 5 (List.length (Figures.fig7_sample_size_sweep ()));
  Alcotest.(check int) "fig8 has 3 thresholds + 2 plans" 5
    (List.length (Figures.fig8_high_crossover ()))

let () =
  Alcotest.run "rq_analysis"
    [
      ( "model",
        [
          Alcotest.test_case "crossover points" `Quick test_crossover;
          Alcotest.test_case "linear plan costs" `Quick test_plan_costs_linear;
          Alcotest.test_case "oracle cost" `Quick test_oracle_cost;
          Alcotest.test_case "choice table structure" `Quick test_choice_table_threshold_structure;
          Alcotest.test_case "T=95% never picks the risky plan" `Quick test_t95_never_risky;
          Alcotest.test_case "expected-cost limits" `Quick test_expected_cost_limits;
          Alcotest.test_case "low thresholds pay at high selectivity" `Quick
            test_low_threshold_overestimates_risk;
          Alcotest.test_case "risk-taking monotone in T" `Quick
            test_risky_probability_monotone_in_threshold;
          Alcotest.test_case "Figure-6 trade-off shape" `Quick test_workload_tradeoff_shape;
          Alcotest.test_case "Figure-7 sample-size effect" `Quick test_sample_size_improves_cost;
          Alcotest.test_case "Figure-8 threshold insensitivity" `Quick
            test_high_crossover_insensitive_to_threshold;
          Alcotest.test_case "estimation rules (LEC / ML)" `Quick test_estimation_rules;
        ] );
      ( "figures",
        [
          Alcotest.test_case "Fig 1: 26% crossover" `Quick test_fig1_crossover_at_26;
          Alcotest.test_case "Fig 3: 65% threshold crossover" `Quick
            test_fig3_confidence_crossover_at_65;
          Alcotest.test_case "Fig 2: density shapes" `Quick test_fig2_densities_shape;
          Alcotest.test_case "Fig 4: prior vs sample size" `Quick test_fig4_series_present;
          Alcotest.test_case "series inventories" `Quick test_figure_series_sizes;
        ] );
    ]
