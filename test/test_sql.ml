(* Tests for rq_sql: lexer, parser, hints, and the binder (including date
   coercion, FK-join absorption, and end-to-end equivalence with direct
   logical-query construction). *)

open Rq_storage
open Rq_exec
open Rq_sql

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens_of input =
  match Lexer.tokenize input with
  | Ok tokens -> tokens
  | Error msg -> Alcotest.failf "lex error: %s" msg

let test_lexer_basics () =
  let tokens = tokens_of "SELECT a, b2 FROM t WHERE a >= 1.5" in
  check_int "token count" 11 (List.length tokens);
  check_bool "keyword recognized (case-insensitively)" true
    (Token.is_keyword (List.hd tokens) "select");
  check_bool "float literal" true (List.mem (Token.Float_lit 1.5) tokens);
  check_bool ">= is one token" true (List.mem (Token.Symbol ">=") tokens)

let test_lexer_strings () =
  let tokens = tokens_of "'it''s' 'plain'" in
  check_bool "escaped quote" true (List.mem (Token.String_lit "it's") tokens);
  check_bool "plain string" true (List.mem (Token.String_lit "plain") tokens)

let test_lexer_comments_and_hints () =
  let tokens = tokens_of "SELECT /* block */ a -- line\nFROM t /*+ CONFIDENCE(80) */" in
  check_bool "block comment dropped" false
    (List.exists (function Token.Ident "block" -> true | _ -> false) tokens);
  check_bool "hint preserved" true (List.mem (Token.Hint " CONFIDENCE(80) ") tokens)

let test_lexer_errors () =
  check_bool "unterminated string" true (Result.is_error (Lexer.tokenize "SELECT 'oops"));
  check_bool "unterminated comment" true (Result.is_error (Lexer.tokenize "SELECT /* oops"));
  check_bool "bad character" true (Result.is_error (Lexer.tokenize "SELECT @"))

let test_lexer_not_equal_spellings () =
  check_bool "!= normalized to <>" true (List.mem (Token.Symbol "<>") (tokens_of "a != b"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_ok input =
  match Parser.parse input with
  | Ok statement -> statement
  | Error msg -> Alcotest.failf "parse error on %S: %s" input msg

let test_parser_template () =
  let stmt =
    parse_ok
      "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate BETWEEN '07/01/97' AND \
       '09/30/97' AND l_receiptdate BETWEEN '07/01/97' + 30 AND '09/30/97' + 30"
  in
  check_int "one select item" 1 (List.length stmt.Ast.select);
  Alcotest.(check (list string)) "from" [ "lineitem" ] stmt.Ast.from;
  match stmt.Ast.where with
  | Some (Ast.And [ Ast.Between _; Ast.Between _ ]) -> ()
  | _ -> Alcotest.fail "expected two BETWEENs under AND"

let test_parser_between_and_binding () =
  (* The AND inside BETWEEN must not be confused with a conjunction. *)
  let stmt = parse_ok "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b = 3" in
  match stmt.Ast.where with
  | Some (Ast.And [ Ast.Between _; Ast.Cmp (Ast.Eq, _, _) ]) -> ()
  | _ -> Alcotest.fail "BETWEEN bound its own AND"

let test_parser_precedence () =
  let stmt = parse_ok "SELECT * FROM t WHERE a = 1 + 2 * 3" in
  match stmt.Ast.where with
  | Some (Ast.Cmp (Ast.Eq, _, Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, _, _)))) -> ()
  | _ -> Alcotest.fail "multiplication must bind tighter than addition"

let test_parser_or_and_not () =
  let stmt = parse_ok "SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3" in
  match stmt.Ast.where with
  | Some (Ast.Or [ Ast.Cmp _; Ast.And [ Ast.Cmp _; Ast.Not (Ast.Cmp _) ] ]) -> ()
  | _ -> Alcotest.fail "OR must bind looser than AND"

let test_parser_aggregates () =
  let stmt = parse_ok "SELECT COUNT(*), SUM(x) AS total, AVG(y) FROM t GROUP BY g, h" in
  check_int "three aggregates" 3 (List.length stmt.Ast.select);
  (match List.nth stmt.Ast.select 1 with
  | Ast.Agg_item (Ast.Sum, Some (Ast.Column { Ast.name = "x"; _ }), Some "total") -> ()
  | _ -> Alcotest.fail "SUM with alias");
  check_int "group-by columns" 2 (List.length stmt.Ast.group_by)

let test_parser_dates () =
  let stmt = parse_ok "SELECT * FROM t WHERE d = DATE '1997-07-01'" in
  (match stmt.Ast.where with
  | Some (Ast.Cmp (Ast.Eq, _, Ast.Date_lit (1997, 7, 1))) -> ()
  | _ -> Alcotest.fail "ISO date literal");
  check_bool "US short year" true
    (match Parser.parse_date_string "07/01/97" with Some (1997, 7, 1) -> true | _ -> false);
  check_bool "two-digit pivot" true
    (match Parser.parse_date_string "01/15/05" with Some (2005, 1, 15) -> true | _ -> false)

let test_parser_hints_collected () =
  let stmt = parse_ok "/*+ CONFIDENCE(95) */ SELECT * FROM t" in
  check_int "hint count" 1 (List.length stmt.Ast.hints)

let test_parser_qualified_columns () =
  let stmt = parse_ok "SELECT t.a FROM t WHERE t.b = u.c" in
  match stmt.Ast.select with
  | [ Ast.Expr_item (Ast.Column { Ast.table = Some "t"; name = "a" }, None) ] -> ()
  | _ -> Alcotest.fail "qualified column in SELECT"

let test_parser_errors () =
  List.iter
    (fun sql -> check_bool sql true (Result.is_error (Parser.parse sql)))
    [
      "FROM t";                          (* missing SELECT *)
      "SELECT FROM t";                   (* empty select list *)
      "SELECT * FROM";                   (* missing table *)
      "SELECT * FROM t WHERE";           (* missing condition *)
      "SELECT * FROM t WHERE a BETWEEN 1";  (* incomplete BETWEEN *)
      "SELECT * FROM t GROUP";           (* GROUP without BY *)
      "SELECT * FROM t extra";           (* trailing garbage *)
      "SELECT SUM(*) FROM t";            (* * only for COUNT *)
    ]

let test_parser_order_limit () =
  let stmt = parse_ok "SELECT * FROM t ORDER BY a DESC, t.b LIMIT 10" in
  (match stmt.Ast.order_by with
  | [ { Ast.order_column = { Ast.table = None; name = "a" }; desc = true };
      { Ast.order_column = { Ast.table = Some "t"; name = "b" }; desc = false } ] -> ()
  | _ -> Alcotest.fail "order items");
  Alcotest.(check (option int)) "limit" (Some 10) stmt.Ast.limit;
  check_bool "negative limit rejected" true
    (Result.is_error (Parser.parse "SELECT * FROM t LIMIT -1"));
  check_bool "limit needs an integer" true
    (Result.is_error (Parser.parse "SELECT * FROM t LIMIT many"))

let test_parser_trailing_semicolon () =
  check_bool "semicolon accepted" true (Result.is_ok (Parser.parse "SELECT * FROM t;"))

(* ------------------------------------------------------------------ *)
(* Hints                                                               *)
(* ------------------------------------------------------------------ *)

let test_hint_parse () =
  (match Hint.parse " CONFIDENCE(80) " with
  | Ok (Some c) ->
      Alcotest.(check (float 1e-9)) "confidence" 80.0 (Rq_core.Confidence.to_percent c)
  | _ -> Alcotest.fail "CONFIDENCE(80)");
  (match Hint.parse "ROBUSTNESS(conservative)" with
  | Ok (Some c) -> Alcotest.(check (float 1e-9)) "policy" 95.0 (Rq_core.Confidence.to_percent c)
  | _ -> Alcotest.fail "ROBUSTNESS");
  check_bool "unknown directive ignored" true (Hint.parse "USE_INDEX(foo)" = Ok None);
  check_bool "bad percentage" true (Result.is_error (Hint.parse "CONFIDENCE(150)"));
  check_bool "non-numeric" true (Result.is_error (Hint.parse "CONFIDENCE(lots)"))

let test_hint_resolution () =
  let setting = { Rq_core.Confidence.system_default = Rq_core.Confidence.of_percent 80.0 } in
  (match Hint.resolve ~hints:[] ~setting with
  | Ok c -> Alcotest.(check (float 1e-9)) "default" 80.0 (Rq_core.Confidence.to_percent c)
  | Error e -> Alcotest.fail e);
  (match Hint.resolve ~hints:[ "CONFIDENCE(20)"; "CONFIDENCE(60)" ] ~setting with
  | Ok c -> Alcotest.(check (float 1e-9)) "last hint wins" 60.0 (Rq_core.Confidence.to_percent c)
  | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Binder                                                              *)
(* ------------------------------------------------------------------ *)

let sql_catalog () =
  let rng = Rq_math.Rng.create 90 in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"d_id"
    (Relation.create ~name:"dept"
       ~schema:
         (Schema.create
            [ { Schema.name = "d_id"; ty = Value.T_int }; { Schema.name = "d_name"; ty = Value.T_string } ])
       (Array.init 5 (fun i -> [| Value.Int i; Value.String (Printf.sprintf "dept%d" i) |])));
  Catalog.add_table catalog ~primary_key:"e_id"
    (Relation.create ~name:"emp"
       ~schema:
         (Schema.create
            [
              { Schema.name = "e_id"; ty = Value.T_int };
              { Schema.name = "e_dept"; ty = Value.T_int };
              { Schema.name = "salary"; ty = Value.T_int };
              { Schema.name = "hired"; ty = Value.T_date };
            ])
       (Array.init 200 (fun i ->
            [|
              Value.Int i;
              Value.Int (i mod 5);
              Value.Int (30_000 + (137 * i mod 70_000));
              Value.Date (10_000 + Rq_math.Rng.int rng 2000);
            |])));
  Catalog.add_foreign_key catalog
    { from_table = "emp"; from_column = "e_dept"; to_table = "dept"; to_column = "d_id" };
  Catalog.build_index catalog ~table:"emp" ~column:"salary";
  catalog

let bind_ok catalog sql =
  match Binder.compile catalog sql with
  | Ok bound -> bound
  | Error msg -> Alcotest.failf "bind error on %S: %s" sql msg

let bind_err catalog sql =
  match Binder.compile catalog sql with
  | Ok _ -> Alcotest.failf "expected bind error for %S" sql
  | Error msg -> msg

let test_binder_single_table () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT COUNT(*) FROM emp WHERE salary >= 50000" in
  let q = bound.Binder.query in
  check_int "one table" 1 (List.length q.Rq_optimizer.Logical.tables);
  (* The bound predicate must agree with a hand-built one on every row. *)
  let expected = Pred.ge (Expr.col "salary") (Expr.int 50_000) in
  let rel = Catalog.find_table catalog "emp" in
  let bound_pred = (List.hd q.Rq_optimizer.Logical.tables).Rq_optimizer.Logical.pred in
  let schema = Relation.schema rel in
  Relation.iter
    (fun _ tup ->
      check_bool "same predicate semantics" (Pred.eval schema expected tup)
        (Pred.eval schema bound_pred tup))
    rel

let test_binder_fk_join_absorbed () =
  let catalog = sql_catalog () in
  let bound =
    bind_ok catalog "SELECT COUNT(*) FROM emp, dept WHERE e_dept = d_id AND d_name = 'dept2'"
  in
  let q = bound.Binder.query in
  check_int "two tables" 2 (List.length q.Rq_optimizer.Logical.tables);
  (* The join conjunct is absorbed; only dept keeps a residual predicate. *)
  let pred_of t =
    (List.find (fun (r : Rq_optimizer.Logical.table_ref) -> r.Rq_optimizer.Logical.table = t)
       q.Rq_optimizer.Logical.tables)
      .Rq_optimizer.Logical.pred
  in
  check_bool "emp predicate empty" true (pred_of "emp" = Pred.True);
  check_bool "dept predicate retained" true (pred_of "dept" <> Pred.True)

let test_binder_non_fk_conjunct_residual () =
  (* A cross-table conjunct that is not an FK equality is kept as a
     residual filter above the (FK-implied) join instead of being
     rejected. *)
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT COUNT(*) FROM emp, dept WHERE salary = d_id" in
  let q = bound.Binder.query in
  check_int "two tables" 2 (List.length q.Rq_optimizer.Logical.tables);
  check_bool "residual retained" true (q.Rq_optimizer.Logical.residual <> Pred.True);
  List.iter
    (fun (r : Rq_optimizer.Logical.table_ref) ->
      check_bool "per-table predicates untouched" true (r.Rq_optimizer.Logical.pred = Pred.True))
    q.Rq_optimizer.Logical.tables;
  (* But a conjunct over a table absent from FROM still fails. *)
  let msg = bind_err catalog "SELECT COUNT(*) FROM emp WHERE salary = d_id" in
  check_bool "explains the failure" true (String.length msg > 0)

let test_binder_date_coercion () =
  let catalog = sql_catalog () in
  (* '1997-05-19' is day 10000. *)
  let bound = bind_ok catalog "SELECT COUNT(*) FROM emp WHERE hired = '1997-05-19'" in
  let pred = (List.hd bound.Binder.query.Rq_optimizer.Logical.tables).Rq_optimizer.Logical.pred in
  match pred with
  | Pred.Cmp (Pred.Eq, _, Expr.Const (Value.Date 10000)) -> ()
  | _ -> Alcotest.failf "expected date coercion, got %s" (Format.asprintf "%a" Pred.pp pred)

let test_binder_date_arithmetic () =
  let catalog = sql_catalog () in
  let bound =
    bind_ok catalog
      "SELECT COUNT(*) FROM emp WHERE hired BETWEEN '1997-05-19' + 10 AND '1997-05-19' + 20"
  in
  let pred = (List.hd bound.Binder.query.Rq_optimizer.Logical.tables).Rq_optimizer.Logical.pred in
  match pred with
  | Pred.Between (_, lo, hi) ->
      check_bool "lo folds to day 10010" true (Expr.const_value lo = Some (Value.Date 10010));
      check_bool "hi folds to day 10020" true (Expr.const_value hi = Some (Value.Date 10020))
  | _ -> Alcotest.fail "expected BETWEEN"

let test_binder_like () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT COUNT(*) FROM dept WHERE d_name LIKE '%ept2%'" in
  let pred = (List.hd bound.Binder.query.Rq_optimizer.Logical.tables).Rq_optimizer.Logical.pred in
  (match pred with
  | Pred.Contains (_, "ept2") -> ()
  | _ -> Alcotest.fail "expected Contains");
  check_bool "mid-pattern wildcard rejected" true
    (Result.is_error (Binder.compile catalog "SELECT * FROM dept WHERE d_name LIKE 'a%b'"))

let test_binder_group_by () =
  let catalog = sql_catalog () in
  let bound =
    bind_ok catalog
      "SELECT d_name, COUNT(*) AS staff FROM emp, dept WHERE e_dept = d_id GROUP BY d_name"
  in
  let q = bound.Binder.query in
  Alcotest.(check (list string)) "qualified group-by" [ "dept.d_name" ] q.Rq_optimizer.Logical.group_by;
  check_int "one aggregate" 1 (List.length q.Rq_optimizer.Logical.aggs);
  check_bool "select column outside GROUP BY rejected" true
    (Result.is_error
       (Binder.compile catalog "SELECT salary, COUNT(*) FROM emp GROUP BY e_dept"))

let test_binder_errors () =
  let catalog = sql_catalog () in
  List.iter
    (fun sql -> check_bool sql true (Result.is_error (Binder.compile catalog sql)))
    [ "SELECT * FROM nowhere"; "SELECT bogus FROM emp" ];
  (* A WHERE-less FK join is valid: the join is implied by the FK edge. *)
  check_bool "implicit FK join accepted" true
    (Result.is_ok (Binder.compile catalog "SELECT d_id FROM emp, dept"))

let test_binder_order_limit () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT salary FROM emp ORDER BY salary DESC LIMIT 5" in
  let q = bound.Binder.query in
  (match q.Rq_optimizer.Logical.order_by with
  | [ { Rq_exec.Plan.sort_column = "emp.salary"; descending = true } ] -> ()
  | _ -> Alcotest.fail "qualified sort key");
  Alcotest.(check (option int)) "limit" (Some 5) q.Rq_optimizer.Logical.limit;
  (* ORDER BY an aggregate alias. *)
  let agg = bind_ok catalog "SELECT e_dept, COUNT(*) AS n FROM emp GROUP BY e_dept ORDER BY n DESC" in
  (match agg.Binder.query.Rq_optimizer.Logical.order_by with
  | [ { Rq_exec.Plan.sort_column = "n"; descending = true } ] -> ()
  | _ -> Alcotest.fail "alias sort key");
  check_bool "unknown order column rejected" true
    (Result.is_error
       (Binder.compile catalog "SELECT e_dept, COUNT(*) AS n FROM emp GROUP BY e_dept ORDER BY zz"))

let test_binder_count_expr () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT COUNT(salary) AS paid FROM emp" in
  match bound.Binder.query.Rq_optimizer.Logical.aggs with
  | [ { Rq_exec.Plan.fn = Rq_exec.Plan.Count _; output_name = "paid" } ] -> ()
  | _ -> Alcotest.fail "expected COUNT(expr) aggregate"

let test_binder_hint_flows_through () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "/*+ CONFIDENCE(33) */ SELECT COUNT(*) FROM emp" in
  match bound.Binder.confidence_hint with
  | Some c -> Alcotest.(check (float 1e-9)) "hint" 33.0 (Rq_core.Confidence.to_percent c)
  | None -> Alcotest.fail "hint lost"

let test_binder_projection () =
  let catalog = sql_catalog () in
  let bound = bind_ok catalog "SELECT salary, e_id FROM emp" in
  Alcotest.(check (option (list string))) "projection"
    (Some [ "emp.salary"; "emp.e_id" ])
    bound.Binder.query.Rq_optimizer.Logical.projection;
  let star = bind_ok catalog "SELECT * FROM emp" in
  check_bool "star keeps everything" true
    (star.Binder.query.Rq_optimizer.Logical.projection = None)


(* ------------------------------------------------------------------ *)
(* DDL and loader                                                      *)
(* ------------------------------------------------------------------ *)

let ddl_script = {sql|
CREATE TABLE dept (
  d_id INT PRIMARY KEY,
  d_name TEXT
);
CREATE TABLE emp (
  e_id INT PRIMARY KEY,
  e_dept INT,
  salary FLOAT,
  hired DATE,
  active BOOL,
  FOREIGN KEY (e_dept) REFERENCES dept (d_id)
) CLUSTERED BY (e_dept);
CREATE INDEX ON emp (salary);
|sql}

let test_ddl_parse () =
  match Ddl.parse_script ddl_script with
  | Error e -> Alcotest.fail e
  | Ok [ Ddl.Create_table dept; Ddl.Create_table emp; Ddl.Create_index idx ] ->
      Alcotest.(check string) "dept name" "dept" dept.Ddl.table_name;
      check_int "dept columns" 2 (List.length dept.Ddl.columns);
      check_bool "pk flagged" true (List.hd dept.Ddl.columns).Ddl.primary_key;
      Alcotest.(check (option string)) "clustering" (Some "e_dept") emp.Ddl.clustered_by;
      (match emp.Ddl.foreign_keys with
      | [ ("e_dept", "dept", "d_id") ] -> ()
      | _ -> Alcotest.fail "fk parsed");
      Alcotest.(check string) "index table" "emp" idx.table;
      Alcotest.(check string) "index column" "salary" idx.column
  | Ok _ -> Alcotest.fail "statement shapes"

let test_ddl_errors () =
  List.iter
    (fun script -> check_bool script true (Result.is_error (Ddl.parse_script script)))
    [
      "CREATE TABLE t ()";                          (* no columns *)
      "CREATE TABLE t (a WIBBLE)";                  (* unknown type *)
      "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)";  (* two pks *)
      "CREATE VIEW v";                              (* unsupported *)
      "ALTER TABLE t";                              (* unsupported *)
    ]

let test_loader_roundtrip () =
  (* Generate a small workload, export it, reload it, and compare. *)
  let tmp = Filename.temp_file "rq_loader" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) (Sys.readdir tmp);
      Sys.rmdir tmp)
    (fun () ->
      let params = { Rq_workload.Tpch.default_params with scale_factor = 0.001 } in
      let original = Rq_workload.Tpch.generate (Rq_math.Rng.create 55) ~params () in
      (match Loader.export_directory original tmp with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match Loader.load_directory tmp with
      | Error e -> Alcotest.fail e
      | Ok reloaded ->
          Alcotest.(check (list string)) "tables" (Catalog.table_names original)
            (Catalog.table_names reloaded);
          List.iter
            (fun table ->
              let a = Catalog.find_table original table in
              let b = Catalog.find_table reloaded table in
              check_int (table ^ " rows") (Relation.row_count a) (Relation.row_count b);
              (* Spot-check full tuple equality on a few rows. *)
              List.iter
                (fun rid ->
                  Alcotest.(check (array string))
                    (Printf.sprintf "%s row %d" table rid)
                    (Array.map Value.to_string (Relation.get a rid))
                    (Array.map Value.to_string (Relation.get b rid)))
                [ 0; Relation.row_count a / 2; Relation.row_count a - 1 ];
              Alcotest.(check (option string)) (table ^ " pk") (Catalog.primary_key original table)
                (Catalog.primary_key reloaded table);
              Alcotest.(check (option string)) (table ^ " clustering")
                (Catalog.clustered_by original table)
                (Catalog.clustered_by reloaded table);
              check_int (table ^ " indexes")
                (List.length (Catalog.indexes_on original table))
                (List.length (Catalog.indexes_on reloaded table)))
            (Catalog.table_names original);
          check_int "foreign keys"
            (List.length (Catalog.all_foreign_keys original))
            (List.length (Catalog.all_foreign_keys reloaded));
          (* And the reloaded catalog answers queries identically. *)
          let q = Rq_workload.Tpch.exp1_query ~offset:60 in
          check_int "query results agree"
            (Array.length (Rq_optimizer.Naive.evaluate_query original q).Rq_exec.Executor.tuples)
            (Array.length (Rq_optimizer.Naive.evaluate_query reloaded q).Rq_exec.Executor.tuples))

let test_loader_bad_data () =
  let tmp = Filename.temp_file "rq_loader_bad" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat tmp f)) (Sys.readdir tmp);
      Sys.rmdir tmp)
    (fun () ->
      let write name contents =
        let oc = open_out (Filename.concat tmp name) in
        output_string oc contents;
        close_out oc
      in
      write "schema.sql" "CREATE TABLE t (a INT PRIMARY KEY, b TEXT);";
      (* Missing CSV. *)
      check_bool "missing csv" true (Result.is_error (Loader.load_directory tmp));
      (* Wrong header. *)
      write "t.csv" "a,c\n1,x\n";
      check_bool "wrong header" true (Result.is_error (Loader.load_directory tmp));
      (* Type error, with row number in the message. *)
      write "t.csv" "a,b\n1,x\noops,y\n";
      (match Loader.load_directory tmp with
      | Error msg -> check_bool "row number reported" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "expected type error");
      (* Clean load. *)
      write "t.csv" "a,b\n1,x\n2,\n";
      match Loader.load_directory tmp with
      | Ok catalog ->
          let rel = Catalog.find_table catalog "t" in
          check_int "rows" 2 (Relation.row_count rel);
          check_bool "empty field is NULL" true (Value.is_null (Relation.get rel 1).(1))
      | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Fingerprint properties                                              *)
(* ------------------------------------------------------------------ *)

open Rq_optimizer

let fp ?confidence q = Fingerprint.of_logical ~estimator:"robust-sampling" ?confidence q

(* Small random SPJ queries: 1-3 tables, each with a conjunction of
   integer comparisons.  (Fingerprinting never consults a catalog, so the
   table vocabulary is free-form.) *)
let gen_cmp =
  QCheck.Gen.(
    map3
      (fun op col lit ->
        let c = Expr.col col and v = Expr.int lit in
        match op with
        | 0 -> Pred.eq c v
        | 1 -> Pred.lt c v
        | 2 -> Pred.ge c v
        | _ -> Pred.Cmp (Pred.Ne, c, v))
      (int_bound 3)
      (oneofl [ "a"; "b"; "c" ])
      (int_bound 100))

let gen_query =
  QCheck.Gen.(
    let gen_pred = map (fun ps -> Pred.And ps) (list_size (int_range 1 3) gen_cmp) in
    let gen_ref = pair (oneofl [ "t1"; "t2"; "t3" ]) gen_pred in
    map2
      (fun refs limit ->
        (* one ref per table name: duplicate tables are not a valid query *)
        let dedup =
          List.fold_left
            (fun acc (t, p) -> if List.mem_assoc t acc then acc else (t, p) :: acc)
            [] refs
        in
        Logical.query ?limit
          (List.map (fun (t, p) -> Logical.scan ~pred:p t) dedup))
      (list_size (int_range 1 3) gen_ref)
      (opt (int_bound 50)))

let arb_query =
  QCheck.make ~print:(fun q -> Fingerprint.to_key (fp q)) gen_query

(* Reverse table order, reverse every conjunction, swap =/<> operands:
   everything the fingerprint promises to normalize away. *)
let rec commute_pred = function
  | Pred.And ps -> Pred.And (List.rev_map commute_pred ps)
  | Pred.Or ps -> Pred.Or (List.rev_map commute_pred ps)
  | Pred.Cmp (Pred.Eq, a, b) -> Pred.Cmp (Pred.Eq, b, a)
  | Pred.Cmp (Pred.Ne, a, b) -> Pred.Cmp (Pred.Ne, b, a)
  | Pred.Not p -> Pred.Not (commute_pred p)
  | p -> p

let commute_query (q : Logical.t) =
  {
    q with
    Logical.tables =
      List.rev_map
        (fun (r : Logical.table_ref) -> { r with Logical.pred = commute_pred r.Logical.pred })
        q.Logical.tables;
  }

let prop_fingerprint_commutation =
  QCheck.Test.make ~name:"fingerprint: invariant under commutation" ~count:300 arb_query
    (fun q -> Fingerprint.equal (fp q) (fp (commute_query q)))

let prop_fingerprint_pure =
  QCheck.Test.make ~name:"fingerprint: pure (same input, same key and hash)" ~count:300
    arb_query (fun q ->
      let a = fp q and b = fp q in
      Fingerprint.equal a b
      && Fingerprint.hash a = Fingerprint.hash b
      && Fingerprint.compare a b = 0)

let bump_first_literal = function
  | Pred.And (Pred.Cmp (op, a, Expr.Const (Value.Int n)) :: rest) ->
      Some (Pred.And (Pred.Cmp (op, a, Expr.Const (Value.Int (n + 1))) :: rest))
  | Pred.Cmp (op, a, Expr.Const (Value.Int n)) ->
      Some (Pred.Cmp (op, a, Expr.Const (Value.Int (n + 1))))
  | _ -> None

let prop_fingerprint_literal_distinct =
  QCheck.Test.make ~name:"fingerprint: literals are distinguishing" ~count:300 arb_query
    (fun q ->
      match q.Logical.tables with
      | ({ Logical.pred; _ } as r) :: rest -> (
          match bump_first_literal pred with
          | None -> QCheck.assume_fail ()
          | Some pred' ->
              let q' = { q with Logical.tables = { r with Logical.pred = pred' } :: rest } in
              not (Fingerprint.equal (fp q) (fp q')))
      | [] -> QCheck.assume_fail ())

let prop_fingerprint_confidence_distinct =
  QCheck.Test.make ~name:"fingerprint: confidence is distinguishing" ~count:100
    QCheck.(pair (int_range 1 99) (int_range 1 99))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let q = Logical.query [ Logical.scan "t" ] in
      let key p = fp ~confidence:(Rq_core.Confidence.of_percent (float_of_int p)) q in
      not (Fingerprint.equal (key a) (key b)))

let () =
  Alcotest.run "rq_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "comments and hints" `Quick test_lexer_comments_and_hints;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "<> spellings" `Quick test_lexer_not_equal_spellings;
        ] );
      ( "parser",
        [
          Alcotest.test_case "experiment template" `Quick test_parser_template;
          Alcotest.test_case "BETWEEN/AND binding" `Quick test_parser_between_and_binding;
          Alcotest.test_case "arithmetic precedence" `Quick test_parser_precedence;
          Alcotest.test_case "OR/AND/NOT" `Quick test_parser_or_and_not;
          Alcotest.test_case "aggregates" `Quick test_parser_aggregates;
          Alcotest.test_case "dates" `Quick test_parser_dates;
          Alcotest.test_case "hints collected" `Quick test_parser_hints_collected;
          Alcotest.test_case "qualified columns" `Quick test_parser_qualified_columns;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "ORDER BY and LIMIT" `Quick test_parser_order_limit;
          Alcotest.test_case "trailing semicolon" `Quick test_parser_trailing_semicolon;
        ] );
      ( "hint",
        [
          Alcotest.test_case "parse" `Quick test_hint_parse;
          Alcotest.test_case "resolution" `Quick test_hint_resolution;
        ] );
      ( "binder",
        [
          Alcotest.test_case "single table" `Quick test_binder_single_table;
          Alcotest.test_case "FK join absorbed" `Quick test_binder_fk_join_absorbed;
          Alcotest.test_case "non-FK conjunct residual" `Quick
            test_binder_non_fk_conjunct_residual;
          Alcotest.test_case "date coercion" `Quick test_binder_date_coercion;
          Alcotest.test_case "date arithmetic" `Quick test_binder_date_arithmetic;
          Alcotest.test_case "LIKE handling" `Quick test_binder_like;
          Alcotest.test_case "GROUP BY" `Quick test_binder_group_by;
          Alcotest.test_case "errors" `Quick test_binder_errors;
          Alcotest.test_case "ORDER BY / LIMIT binding" `Quick test_binder_order_limit;
          Alcotest.test_case "COUNT(expr)" `Quick test_binder_count_expr;
          Alcotest.test_case "hint flows through" `Quick test_binder_hint_flows_through;
          Alcotest.test_case "projection" `Quick test_binder_projection;
        ] );
      ( "ddl+loader",
        [
          Alcotest.test_case "DDL parsing" `Quick test_ddl_parse;
          Alcotest.test_case "DDL errors" `Quick test_ddl_errors;
          Alcotest.test_case "export/load roundtrip" `Quick test_loader_roundtrip;
          Alcotest.test_case "loader error handling" `Quick test_loader_bad_data;
        ] );
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest prop_fingerprint_commutation;
          QCheck_alcotest.to_alcotest prop_fingerprint_pure;
          QCheck_alcotest.to_alcotest prop_fingerprint_literal_distinct;
          QCheck_alcotest.to_alcotest prop_fingerprint_confidence_distinct;
        ] );
    ]
