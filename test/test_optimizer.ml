(* Tests for rq_optimizer: logical queries, the naive oracle, cardinality
   estimators, costing coherence, plan enumeration, and end-to-end plan
   choice under correlated data. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close tolerance = Alcotest.(check (float tolerance))

(* Fixture: a "sensors" table with two perfectly correlated indexed
   columns, plus a "sites" dimension. *)
let fixture ?(rows = 5000) () =
  let rng = Rq_math.Rng.create 61 in
  let catalog = Catalog.create () in
  let sites = 25 in
  Catalog.add_table catalog ~primary_key:"site_id"
    (Relation.create ~name:"sites"
       ~schema:
         (Schema.create
            [ { Schema.name = "site_id"; ty = Value.T_int }; { Schema.name = "zone"; ty = Value.T_int } ])
       (Array.init sites (fun i -> [| v_int i; v_int (i mod 5) |])));
  let readings =
    Array.init rows (fun i ->
        (* temp and alert are strongly correlated: alert fires exactly when
           temp is in the top 2%. *)
        let temp = Rq_math.Rng.int rng 1000 in
        [|
          v_int i;
          v_int (Rq_math.Rng.int rng sites);
          v_int temp;
          v_int (if temp >= 980 then 1 else 0);
        |])
  in
  Catalog.add_table catalog ~primary_key:"r_id"
    (Relation.create ~name:"readings"
       ~schema:
         (Schema.create
            [
              { Schema.name = "r_id"; ty = Value.T_int };
              { Schema.name = "site"; ty = Value.T_int };
              { Schema.name = "temp"; ty = Value.T_int };
              { Schema.name = "alert"; ty = Value.T_int };
            ])
       readings);
  Catalog.add_foreign_key catalog
    { from_table = "readings"; from_column = "site"; to_table = "sites"; to_column = "site_id" };
  List.iter
    (fun (table, column) -> Catalog.build_index catalog ~table ~column)
    [ ("readings", "temp"); ("readings", "alert"); ("readings", "site"); ("sites", "site_id") ];
  catalog

let correlated_pred =
  Pred.conj
    [ Pred.ge (Expr.col "temp") (Expr.int 980); Pred.eq (Expr.col "alert") (Expr.int 1) ]

(* ------------------------------------------------------------------ *)
(* Logical                                                             *)
(* ------------------------------------------------------------------ *)

let test_logical_validate () =
  let catalog = fixture () in
  let ok = Logical.query [ Logical.scan "readings"; Logical.scan "sites" ] in
  check_bool "valid join" true (Result.is_ok (Logical.validate catalog ok));
  check_bool "unknown table" true
    (Result.is_error (Logical.validate catalog (Logical.query [ Logical.scan "nope" ])));
  check_bool "empty query" true (Result.is_error (Logical.validate catalog (Logical.query [])));
  check_bool "duplicate table (self-join)" true
    (Result.is_error
       (Logical.validate catalog (Logical.query [ Logical.scan "sites"; Logical.scan "sites" ])));
  let bad_pred = Logical.scan ~pred:(Pred.eq (Expr.col "zz") (Expr.int 1)) "sites" in
  check_bool "unknown predicate column" true
    (Result.is_error (Logical.validate catalog (Logical.query [ bad_pred ])))

let test_logical_root () =
  let catalog = fixture () in
  Alcotest.(check (option string)) "join root" (Some "readings")
    (Logical.root catalog (Logical.query [ Logical.scan "sites"; Logical.scan "readings" ]))

let test_logical_connected_subsets () =
  let catalog = fixture () in
  let q = Logical.query [ Logical.scan "readings"; Logical.scan "sites" ] in
  Alcotest.(check (list (list string)))
    "singletons then the pair"
    [ [ "readings" ]; [ "sites" ]; [ "readings"; "sites" ] ]
    (Logical.connected_subsets catalog q)

let test_logical_combined_predicate () =
  let q =
    Logical.query
      [ Logical.scan ~pred:(Pred.eq (Expr.col "alert") (Expr.int 1)) "readings";
        Logical.scan ~pred:(Pred.eq (Expr.col "zone") (Expr.int 2)) "sites" ]
  in
  Alcotest.(check (list string)) "qualified columns"
    [ "readings.alert"; "sites.zone" ]
    (Pred.columns (Logical.combined_predicate q))

(* ------------------------------------------------------------------ *)
(* Naive oracle                                                        *)
(* ------------------------------------------------------------------ *)

let test_naive_single_table () =
  let catalog = fixture ~rows:1000 () in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  let rel = Catalog.find_table catalog "readings" in
  let direct =
    Relation.filter_count rel (Pred.compile (Relation.schema rel) correlated_pred)
  in
  check_int "matches direct filter" direct (Naive.cardinality catalog refs)

let test_naive_join_cardinality () =
  let catalog = fixture ~rows:1000 () in
  (* FK integrity: the unfiltered join preserves the root's cardinality. *)
  let refs = [ Logical.scan "readings"; Logical.scan "sites" ] in
  check_int "join preserves root" 1000 (Naive.cardinality catalog refs);
  check_close 1e-9 "selectivity 1" 1.0 (Naive.selectivity catalog refs)

let test_naive_join_filtered () =
  let catalog = fixture ~rows:1000 () in
  let zone_pred = Pred.eq (Expr.col "zone") (Expr.int 2) in
  let refs = [ Logical.scan "readings"; Logical.scan ~pred:zone_pred "sites" ] in
  (* Cross-check by manual counting. *)
  let sites = Catalog.find_table catalog "sites" in
  let qualifying =
    Relation.fold
      (fun acc _ tup ->
        if Pred.eval (Relation.schema sites) zone_pred tup then
          match tup.(0) with Value.Int s -> s :: acc | _ -> acc
        else acc)
      [] sites
  in
  let readings = Catalog.find_table catalog "readings" in
  let expected =
    Relation.filter_count readings (fun tup ->
        match tup.(1) with Value.Int s -> List.mem s qualifying | _ -> false)
  in
  check_int "filtered join" expected (Naive.cardinality catalog refs)

(* ------------------------------------------------------------------ *)
(* Cardinality estimators                                              *)
(* ------------------------------------------------------------------ *)

let build_stats ?(sample_size = 500) catalog seed =
  Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create seed)
    ~config:{ Rq_stats.Stats_store.default_config with sample_size }
    catalog

let test_oracle_estimator_is_exact () =
  let catalog = fixture ~rows:1000 () in
  let oracle = Cardinality.oracle catalog in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  check_close 1e-9 "exact cardinality"
    (float_of_int (Naive.cardinality catalog refs))
    (oracle.Cardinality.expression_cardinality refs)

let test_robust_beats_avi_on_correlation () =
  (* The headline behaviour: under perfectly correlated predicates, the
     AVI estimate is ~50x too low (2% * 2%), while the robust estimate
     stays within a small factor of the truth. *)
  let catalog = fixture ~rows:20_000 () in
  let stats = build_stats ~sample_size:1000 catalog 77 in
  let estimator =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()
  in
  let robust = Cardinality.robust stats estimator in
  let hist = Cardinality.histogram_avi stats in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  let truth = float_of_int (Naive.cardinality catalog refs) in
  let robust_est = robust.Cardinality.expression_cardinality refs in
  let avi_est = hist.Cardinality.expression_cardinality refs in
  check_bool
    (Printf.sprintf "robust %.0f within 2.5x of truth %.0f" robust_est truth)
    true
    (robust_est > truth /. 2.5 && robust_est < truth *. 2.5);
  check_bool
    (Printf.sprintf "AVI %.0f at least 10x below truth %.0f" avi_est truth)
    true
    (avi_est < truth /. 10.0)

let test_robust_join_estimate () =
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats catalog 78 in
  let estimator =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()
  in
  let robust = Cardinality.robust stats estimator in
  let refs =
    [ Logical.scan "readings"; Logical.scan ~pred:(Pred.eq (Expr.col "zone") (Expr.int 2)) "sites" ]
  in
  let truth = float_of_int (Naive.cardinality catalog refs) in
  let est = robust.Cardinality.expression_cardinality refs in
  check_bool
    (Printf.sprintf "join estimate %.0f within 50%% of %.0f" est truth)
    true
    (Float.abs (est -. truth) < 0.5 *. truth)

let test_estimator_threshold_ordering () =
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats catalog 79 in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  let estimate t =
    let estimator =
      Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent t) ()
    in
    (Cardinality.robust stats estimator).Cardinality.expression_cardinality refs
  in
  check_bool "higher threshold, higher estimate" true
    (estimate 5.0 < estimate 50.0 && estimate 50.0 < estimate 95.0)

let test_sample_ml_estimator () =
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats ~sample_size:200 catalog 87 in
  let ml = Cardinality.sample_ml stats in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  let est = ml.Cardinality.expression_cardinality refs in
  let truth = float_of_int (Naive.cardinality catalog refs) in
  check_bool
    (Printf.sprintf "ML estimate %.0f within 3x of truth %.0f" est truth)
    true
    (est < 3.0 *. truth && est > truth /. 3.0);
  (* The defining hazard: an empty-evidence predicate estimates exactly 0. *)
  let impossible = Pred.eq (Expr.col "temp") (Expr.int (-1)) in
  Alcotest.(check (float 1e-9)) "k=0 -> 0"
    0.0
    (ml.Cardinality.expression_cardinality [ { Logical.table = "readings"; pred = impossible } ]);
  let robust_est =
    (Cardinality.robust stats
       (Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()))
      .Cardinality.expression_cardinality
      [ { Logical.table = "readings"; pred = impossible } ]
  in
  check_bool "robust keeps a floor" true (robust_est > 0.0)

let test_memo_invalidated_by_fault () =
  (* A memo shared across stores must not serve evidence cached against a
     pre-fault synopsis: memo keys embed the per-table stats version, which
     [Fault.apply] bumps.  The shared-memo estimate on the damaged store
     must equal a fresh-memo estimate on the same store, and (the fault
     being destructive) differ from the pre-damage answer. *)
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats catalog 81 in
  let estimator =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()
  in
  let memo = Cardinality.make_memo estimator in
  let refs = [ { Logical.table = "readings"; pred = correlated_pred } ] in
  let estimate stats' =
    (Cardinality.robust_with ~memo stats' estimator).Cardinality.expression_cardinality refs
  in
  let before = estimate stats in
  let damaged =
    Rq_stats.Fault.apply (Rq_math.Rng.create 94) stats
      [ Rq_stats.Fault.Truncate_synopsis { root = "readings"; keep = 0 } ]
  in
  let after_shared = estimate damaged in
  let after_fresh =
    (Cardinality.robust damaged estimator).Cardinality.expression_cardinality refs
  in
  check_close 1e-9 "shared memo = fresh memo on damaged store" after_fresh after_shared;
  check_bool
    (Printf.sprintf "stale evidence not served: before %.1f, after %.1f" before after_shared)
    true
    (Float.abs (before -. after_shared) > 1e-6);
  (* The undamaged store still answers as before through the same memo. *)
  check_close 1e-9 "original store unaffected" before (estimate stats)

let test_group_count_estimates () =
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats catalog 80 in
  let estimator =
    Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ()
  in
  let robust = Cardinality.robust stats estimator in
  let refs = [ Logical.scan "readings"; Logical.scan "sites" ] in
  let groups = robust.Cardinality.group_count refs [ "sites.zone" ] in
  check_bool (Printf.sprintf "zone groups ~5, got %.1f" groups) true
    (groups >= 4.0 && groups <= 7.0);
  let oracle = Cardinality.oracle catalog in
  check_close 1e-9 "oracle group count" 5.0 (oracle.Cardinality.group_count refs [ "sites.zone" ])

(* ------------------------------------------------------------------ *)
(* Costing                                                             *)
(* ------------------------------------------------------------------ *)

let test_costing_matches_execution () =
  (* The cost model and the executor charge the same operations from the
     same constants; with an exact (oracle) estimator the predicted cost
     must track the measured cost closely. *)
  let catalog = fixture ~rows:5000 () in
  let oracle = Cardinality.oracle catalog in
  let plans =
    [
      Plan.Scan { table = "readings"; access = Plan.Seq_scan; pred = correlated_pred };
      Plan.Scan
        {
          table = "readings";
          access =
            Plan.Index_intersect
              [
                { Plan.column = "temp"; lo = Some (v_int 980); hi = None };
                { Plan.column = "alert"; lo = Some (v_int 1); hi = Some (v_int 1) };
              ];
          pred = correlated_pred;
        };
      Plan.Hash_join
        {
          build = Plan.Scan { table = "sites"; access = Plan.Seq_scan; pred = Pred.True };
          probe = Plan.Scan { table = "readings"; access = Plan.Seq_scan; pred = Pred.True };
          build_key = "sites.site_id";
          probe_key = "readings.site";
        };
    ]
  in
  List.iter
    (fun plan ->
      let predicted = (Costing.estimate catalog oracle plan).Costing.cost in
      let meter = Cost.create () in
      ignore (Executor.run catalog meter plan);
      let measured = (Cost.snapshot meter).Cost.seconds in
      check_bool
        (Printf.sprintf "%s: predicted %.4f vs measured %.4f" (Plan.describe plan) predicted
           measured)
        true
        (predicted > measured /. 2.0 && predicted < measured *. 2.0))
    plans

let test_costing_monotone_in_selectivity () =
  let catalog = fixture ~rows:5000 () in
  let oracle = Cardinality.oracle catalog in
  let isect_cost lo =
    let pred = Pred.ge (Expr.col "temp") (Expr.int lo) in
    Costing.plan_cost catalog oracle
      (Plan.Scan
         {
           table = "readings";
           access =
             Plan.Index_intersect
               [
                 { Plan.column = "temp"; lo = Some (v_int lo); hi = None };
                 { Plan.column = "alert"; lo = Some (v_int 0); hi = None };
               ];
           pred;
         })
  in
  check_bool "wider range costs more" true (isect_cost 100 > isect_cost 900)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

let test_fixed_selectivity_and_crossovers () =
  let catalog = fixture ~rows:20_000 () in
  let scan = Plan.Scan { table = "readings"; access = Plan.Seq_scan; pred = correlated_pred } in
  let isect =
    Plan.Scan
      {
        table = "readings";
        access =
          Plan.Index_intersect
            [
              { Plan.column = "temp"; lo = Some (v_int 980); hi = None };
              { Plan.column = "alert"; lo = Some (v_int 1); hi = Some (v_int 1) };
            ];
        pred = correlated_pred;
      }
  in
  (* Scan cost is flat in assumed selectivity; intersection rises. *)
  let curve plan = Costing.cost_curve catalog ~selectivities:[ 0.001; 0.5 ] plan in
  (match curve scan with
  | [ (_, lo); (_, hi) ] ->
      check_bool "scan flat" true (hi -. lo < 0.1 *. Float.max lo 1e-9)
  | _ -> Alcotest.fail "two points expected");
  (match curve isect with
  | [ (_, lo); (_, hi) ] -> check_bool "intersection rises" true (hi > 2.0 *. lo)
  | _ -> Alcotest.fail "two points expected");
  (* Exactly one crossover, at a low selectivity. *)
  (match Costing.crossover_points catalog ~grid:2000 scan isect with
  | [ s ] -> check_bool (Printf.sprintf "crossover at %.4f" s) true (s > 0.0 && s < 0.1)
  | other -> Alcotest.failf "expected one crossover, got %d" (List.length other));
  check_bool "fixed estimator validates input" true
    (try
       ignore (Cardinality.fixed_selectivity catalog 1.5);
       false
     with Invalid_argument _ -> true)

let test_sargable_extraction () =
  let pred =
    Pred.conj
      [
        Pred.ge (Expr.col "a") (Expr.int 10);
        Pred.le (Expr.col "a") (Expr.int 20);
        Pred.eq (Expr.col "b") (Expr.int 5);
        Pred.Contains (Expr.col "c", "x");
      ]
  in
  let ranges = Enumerate.sargable_ranges pred in
  check_int "two sargable columns" 2 (List.length ranges);
  (match List.assoc_opt "a" (List.map (fun (c, lo, hi) -> (c, (lo, hi))) ranges) with
  | Some (Some (Value.Int 10), Some (Value.Int 20)) -> ()
  | _ -> Alcotest.fail "merged range for a");
  match List.assoc_opt "b" (List.map (fun (c, lo, hi) -> (c, (lo, hi))) ranges) with
  | Some (Some (Value.Int 5), Some (Value.Int 5)) -> ()
  | _ -> Alcotest.fail "equality range for b"

let test_access_path_enumeration () =
  let catalog = fixture () in
  let paths = Enumerate.access_paths catalog { Logical.table = "readings"; pred = correlated_pred } in
  (* seq scan + 2 single-index ranges + 1 two-index intersection. *)
  check_int "path count" 4 (List.length paths);
  check_bool "includes seq scan" true
    (List.exists (function Plan.Scan { access = Plan.Seq_scan; _ } -> true | _ -> false) paths);
  check_bool "includes intersection" true
    (List.exists
       (function Plan.Scan { access = Plan.Index_intersect _; _ } -> true | _ -> false)
       paths)

let test_optimizer_picks_cheapest_alternative () =
  let catalog = fixture ~rows:5000 () in
  let stats = build_stats catalog 81 in
  let opt = Optimizer.robust stats in
  let q = Logical.query [ Logical.scan ~pred:correlated_pred "readings" ] in
  let d = Optimizer.optimize_exn opt q in
  match d.Optimizer.alternatives with
  | [] -> Alcotest.fail "no alternatives"
  | (_, best_cost) :: rest ->
      check_close 1e-9 "chosen = cheapest" best_cost d.Optimizer.estimated_cost;
      List.iter (fun (_, c) -> check_bool "sorted ascending" true (c >= best_cost)) rest

let test_plan_choice_shifts_with_threshold () =
  (* Correlated predicates, truth ~2%: AVI says 0.04% (risky plan); the
     robust estimator at a high threshold must refuse the index plan. *)
  let catalog = fixture ~rows:50_000 () in
  let stats = build_stats ~sample_size:200 catalog 82 in
  let choose t =
    let opt = Optimizer.robust ~confidence:(Rq_core.Confidence.of_percent t) stats in
    let q = Logical.query [ Logical.scan ~pred:correlated_pred "readings" ] in
    Plan.describe (Optimizer.optimize_exn opt q).Optimizer.plan
  in
  let baseline =
    let opt = Optimizer.baseline stats in
    let q = Logical.query [ Logical.scan ~pred:correlated_pred "readings" ] in
    Plan.describe (Optimizer.optimize_exn opt q).Optimizer.plan
  in
  Alcotest.(check string) "baseline falls for AVI" "IdxIsect(readings)" baseline;
  Alcotest.(check string) "conservative robust scans" "Scan(readings)" (choose 95.0)

let test_join_enumeration_produces_joins () =
  let catalog = fixture ~rows:2000 () in
  let stats = build_stats catalog 83 in
  let opt = Optimizer.robust stats in
  let q =
    Logical.query
      [ Logical.scan "readings"; Logical.scan ~pred:(Pred.eq (Expr.col "zone") (Expr.int 0)) "sites" ]
  in
  let d = Optimizer.optimize_exn opt q in
  check_bool "plan references both tables" true
    (List.sort compare (Plan.base_tables d.Optimizer.plan) = [ "readings"; "sites" ]);
  check_bool "plan validates" true (Result.is_ok (Plan.validate catalog d.Optimizer.plan))

let test_oracle_optimizer_low_regret () =
  (* With exact cardinalities, the chosen plan's MEASURED time must be near
     the best measured time over all enumerated candidates — the cost model
     tracks execution closely enough (see test_costing_matches_execution)
     for the argmin to carry over. *)
  let catalog = fixture ~rows:20_000 () in
  let stats = build_stats catalog 86 in
  let oracle = Cardinality.oracle catalog in
  let opt = Optimizer.create stats oracle in
  List.iter
    (fun pred ->
      let q = Logical.query [ Logical.scan ~pred "readings" ] in
      let decision = Optimizer.optimize_exn opt q in
      let measure plan =
        let meter = Cost.create () in
        ignore (Executor.run catalog meter plan);
        (Cost.snapshot meter).Cost.seconds
      in
      let chosen = measure decision.Optimizer.plan in
      let best =
        Enumerate.access_paths catalog { Logical.table = "readings"; pred }
        |> List.map measure
        |> List.fold_left Float.min infinity
      in
      check_bool
        (Printf.sprintf "regret %.2fx" (chosen /. best))
        true
        (chosen <= best *. 1.6))
    [
      correlated_pred;
      Pred.ge (Expr.col "temp") (Expr.int 999);
      Pred.ge (Expr.col "temp") (Expr.int 0);
      Pred.conj [ Pred.eq (Expr.col "temp") (Expr.int 5); Pred.eq (Expr.col "alert") (Expr.int 0) ];
    ]

let test_optimize_invalid_query () =
  let catalog = fixture () in
  let stats = build_stats catalog 84 in
  let opt = Optimizer.robust stats in
  check_bool "invalid query is an error" true
    (Result.is_error (Optimizer.optimize opt (Logical.query [ Logical.scan "missing" ])))

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_explain_analyze () =
  let catalog = fixture ~rows:2000 () in
  let oracle = Cardinality.oracle catalog in
  let plan =
    Plan.Aggregate
      {
        input = Plan.Scan { table = "readings"; access = Plan.Seq_scan; pred = correlated_pred };
        group_by = [];
        aggs = [ { Plan.fn = Plan.Count_star; output_name = "n" } ];
      }
  in
  let nodes = Explain_analyze.collect catalog oracle plan in
  check_int "two nodes" 2 (List.length nodes);
  List.iter
    (fun n ->
      check_bool
        (Printf.sprintf "%s q-error %.2f is perfect under the oracle" n.Explain_analyze.label
           n.Explain_analyze.q_error)
        true
        (n.Explain_analyze.q_error < 1.01))
    nodes;
  (* A deliberately wrong estimator shows up as q-error. *)
  let wrong = Cardinality.fixed_selectivity catalog 0.5 in
  let scan_node =
    List.nth (Explain_analyze.collect catalog wrong plan) 1
  in
  check_bool "bad estimate exposed" true (scan_node.Explain_analyze.q_error > 5.0);
  let rendered = Explain_analyze.render catalog oracle plan in
  check_bool "render mentions operators" true (string_contains rendered "SeqScan(readings)");
  check_bool "render reports time" true (string_contains rendered "total simulated execution")

let prop_random_query_pipeline =
  (* Random single-table conjunctive queries: whatever plan the optimizer
     chooses (under the robust estimator and a random threshold), executing
     it returns exactly the rows the naive oracle computes. *)
  let catalog = fixture ~rows:1500 () in
  let stats = build_stats ~sample_size:200 catalog 88 in
  QCheck.Test.make ~name:"optimize+execute = naive on random queries" ~count:40
    QCheck.(quad (int_range 0 999) (int_range 0 999) (int_range 0 1) (float_range 0.05 0.95))
    (fun (b1, b2, alert, t) ->
      let lo = min b1 b2 and hi = max b1 b2 in
      let pred =
        Pred.conj
          [
            Pred.between (Expr.col "temp") (Expr.int lo) (Expr.int hi);
            Pred.eq (Expr.col "alert") (Expr.int alert);
          ]
      in
      let query = Logical.query [ Logical.scan ~pred "readings" ] in
      let opt =
        Optimizer.robust ~confidence:(Rq_core.Confidence.of_fraction t) stats
      in
      let decision = Optimizer.optimize_exn opt query in
      let result, _ = Executor.run_timed catalog decision.Optimizer.plan in
      let naive = Naive.evaluate catalog query.Logical.tables in
      let ids (res : Executor.result) =
        let pos = Schema.index_of res.Executor.schema "readings.r_id" in
        Array.to_list (Array.map (fun tup -> Value.to_string tup.(pos)) res.Executor.tuples)
        |> List.sort compare
      in
      ids result = ids naive)

let test_explain_output () =
  let catalog = fixture ~rows:2000 () in
  let stats = build_stats catalog 85 in
  let opt = Optimizer.robust stats in
  let q = Logical.query [ Logical.scan ~pred:correlated_pred "readings" ] in
  match Optimizer.explain opt q with
  | Error e -> Alcotest.fail e
  | Ok report ->
      check_bool "names the estimator" true (string_contains report "robust-sampling");
      check_bool "lists alternatives" true (string_contains report "alternatives")

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let fingerprint_of opt q =
  Rq_sql.Fingerprint.to_key
    (Rq_sql.Fingerprint.of_logical ~estimator:(Optimizer.estimator opt).Cardinality.name q)

let cache_query ?(threshold = 980) () =
  Logical.query
    [
      Logical.scan ~pred:(Pred.ge (Expr.col "temp") (Expr.int threshold)) "readings";
      Logical.scan "sites";
    ]

let outcome_of = function
  | Ok (_, outcome) -> Plan_cache.outcome_to_string outcome
  | Error e -> Alcotest.fail e

let test_cache_hit_on_repeat () =
  let catalog = fixture () in
  let stats = build_stats catalog 90 in
  let opt = Optimizer.robust stats in
  let cache = Plan_cache.create () in
  let q = cache_query () in
  let fingerprint = fingerprint_of opt q in
  Alcotest.(check string) "first sighting misses" "miss"
    (outcome_of (Plan_cache.find_or_optimize cache opt ~fingerprint q));
  (* Same logical query written with the tables in the other order: the
     fingerprint normalizes it to the same key. *)
  let q' =
    Logical.query
      [
        Logical.scan "sites";
        Logical.scan ~pred:(Pred.ge (Expr.col "temp") (Expr.int 980)) "readings";
      ]
  in
  Alcotest.(check string) "commuted repeat hits" "hit"
    (outcome_of (Plan_cache.find_or_optimize cache opt ~fingerprint:(fingerprint_of opt q') q'));
  let s = Plan_cache.stats cache in
  check_int "one hit" 1 s.Plan_cache.hits;
  check_int "one miss" 1 s.Plan_cache.misses;
  check_close 1e-9 "hit rate" 0.5 (Plan_cache.hit_rate s);
  check_int "one live entry" 1 (Plan_cache.length cache)

let test_cache_invalidated_by_refresh () =
  let catalog = fixture () in
  let m = Rq_stats.Maintenance.create (Rq_math.Rng.create 91) catalog in
  let cache = Plan_cache.create () in
  let obs = Rq_obs.Recorder.create () in
  let q = cache_query () in
  let lookup () =
    let opt = Optimizer.robust (Rq_stats.Maintenance.stats m) in
    outcome_of (Plan_cache.find_or_optimize ~obs cache opt ~fingerprint:(fingerprint_of opt q) q)
  in
  Alcotest.(check string) "miss" "miss" (lookup ());
  Alcotest.(check string) "hit before refresh" "hit" (lookup ());
  Rq_stats.Maintenance.refresh m;
  (* The refresh redrew every sample: serving the old plan would replay a
     decision made against statistics that no longer exist. *)
  Alcotest.(check string) "invalidated after refresh" "invalidated" (lookup ());
  Alcotest.(check string) "hit again after re-optimization" "hit" (lookup ());
  let outcomes =
    List.filter_map
      (function
        | Rq_obs.Trace.Plan_cache { outcome; _ } -> Some outcome
        | _ -> None)
      (Rq_obs.Recorder.events obs)
  in
  Alcotest.(check (list string)) "trace records the re-optimization"
    [ "miss"; "hit"; "invalidated"; "hit" ] outcomes

let test_cache_survives_unrelated_injection () =
  let catalog = fixture () in
  let stats = build_stats catalog 92 in
  let opt = Optimizer.robust stats in
  let cache = Plan_cache.create () in
  let sites_q = Logical.query [ Logical.scan ~pred:(Pred.eq (Expr.col "zone") (Expr.int 2)) "sites" ] in
  let readings_q = cache_query () in
  ignore (Plan_cache.find_or_optimize cache opt ~fingerprint:(fingerprint_of opt sites_q) sites_q);
  ignore (Plan_cache.find_or_optimize cache opt ~fingerprint:(fingerprint_of opt readings_q) readings_q);
  (* Damage only the readings synopsis: per-table version granularity must
     keep the sites entry servable while invalidating the readings one. *)
  let damaged =
    Rq_stats.Fault.apply (Rq_math.Rng.create 93) stats [ Rq_stats.Fault.Drop_synopsis "readings" ]
  in
  let opt' = Optimizer.robust damaged in
  Alcotest.(check string) "unrelated entry still hits" "hit"
    (outcome_of (Plan_cache.find_or_optimize cache opt' ~fingerprint:(fingerprint_of opt' sites_q) sites_q));
  Alcotest.(check string) "damaged root's entry invalidated" "invalidated"
    (outcome_of
       (Plan_cache.find_or_optimize cache opt' ~fingerprint:(fingerprint_of opt' readings_q) readings_q))

let test_cache_lru_eviction () =
  let catalog = fixture () in
  let stats = build_stats catalog 94 in
  let opt = Optimizer.robust stats in
  let cache = Plan_cache.create ~capacity:2 () in
  let qa = cache_query ~threshold:900 () in
  let qb = cache_query ~threshold:950 () in
  let qc = cache_query ~threshold:990 () in
  let run q = ignore (Plan_cache.find_or_optimize cache opt ~fingerprint:(fingerprint_of opt q) q) in
  run qa;
  run qb;
  run qa;  (* touch A so B is the least recently used *)
  run qc;  (* capacity 2: inserting C must evict B, not A *)
  check_bool "A survives (recently used)" true (Plan_cache.mem cache opt ~fingerprint:(fingerprint_of opt qa));
  check_bool "B evicted (least recently used)" false (Plan_cache.mem cache opt ~fingerprint:(fingerprint_of opt qb));
  check_bool "C present" true (Plan_cache.mem cache opt ~fingerprint:(fingerprint_of opt qc));
  check_int "bounded by capacity" 2 (Plan_cache.length cache);
  let s = Plan_cache.stats cache in
  check_int "one eviction" 1 s.Plan_cache.evictions;
  check_int "one hit (the touch)" 1 s.Plan_cache.hits;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Plan_cache.create: capacity must be positive") (fun () ->
      ignore (Plan_cache.create ~capacity:0 ()))

(* Regression: re-optimizing an invalidated entry while the cache sits at
   capacity re-inserts under the same key; that must never evict an
   innocent sibling entry. *)
let test_cache_reinsert_at_capacity_evicts_nothing () =
  let catalog = fixture () in
  let m = Rq_stats.Maintenance.create (Rq_math.Rng.create 96) catalog in
  let cache = Plan_cache.create ~capacity:2 () in
  let qa = cache_query ~threshold:900 () in
  let qb = cache_query ~threshold:950 () in
  let lookup q =
    let opt = Optimizer.robust (Rq_stats.Maintenance.stats m) in
    outcome_of (Plan_cache.find_or_optimize cache opt ~fingerprint:(fingerprint_of opt q) q)
  in
  ignore (lookup qa);
  ignore (lookup qb);
  check_int "cache at capacity" 2 (Plan_cache.length cache);
  (* The refresh stales both entries; re-optimizing A re-inserts its key. *)
  Rq_stats.Maintenance.refresh m;
  Alcotest.(check string) "A re-optimized in place" "invalidated" (lookup qa);
  let opt = Optimizer.robust (Rq_stats.Maintenance.stats m) in
  check_bool "B's entry was not evicted" true
    (Plan_cache.mem cache opt ~fingerprint:(fingerprint_of opt qb));
  check_int "still at capacity" 2 (Plan_cache.length cache);
  check_int "no evictions" 0 (Plan_cache.stats cache).Plan_cache.evictions;
  Alcotest.(check string) "A now hits" "hit" (lookup qa)

let test_cache_never_caches_errors () =
  let catalog = fixture () in
  let stats = build_stats catalog 95 in
  let opt = Optimizer.robust stats in
  let cache = Plan_cache.create () in
  let bad = Logical.query [ Logical.scan "missing" ] in
  let fingerprint = fingerprint_of opt bad in
  check_bool "validation failure surfaces" true
    (Result.is_error (Plan_cache.find_or_optimize cache opt ~fingerprint bad));
  check_bool "error not cached" false (Plan_cache.mem cache opt ~fingerprint);
  check_int "cache stays empty" 0 (Plan_cache.length cache)

let () =
  Alcotest.run "rq_optimizer"
    [
      ( "logical",
        [
          Alcotest.test_case "validation" `Quick test_logical_validate;
          Alcotest.test_case "root detection" `Quick test_logical_root;
          Alcotest.test_case "connected subsets" `Quick test_logical_connected_subsets;
          Alcotest.test_case "combined predicate" `Quick test_logical_combined_predicate;
        ] );
      ( "naive",
        [
          Alcotest.test_case "single table" `Quick test_naive_single_table;
          Alcotest.test_case "join preserves root" `Quick test_naive_join_cardinality;
          Alcotest.test_case "filtered join" `Quick test_naive_join_filtered;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "oracle is exact" `Quick test_oracle_estimator_is_exact;
          Alcotest.test_case "robust beats AVI on correlation" `Quick
            test_robust_beats_avi_on_correlation;
          Alcotest.test_case "join estimate" `Quick test_robust_join_estimate;
          Alcotest.test_case "threshold ordering" `Quick test_estimator_threshold_ordering;
          Alcotest.test_case "sample-ML ablation estimator" `Quick test_sample_ml_estimator;
          Alcotest.test_case "group counts" `Quick test_group_count_estimates;
          Alcotest.test_case "fault injection invalidates shared memo" `Quick
            test_memo_invalidated_by_fault;
        ] );
      ( "costing",
        [
          Alcotest.test_case "predicted tracks measured" `Quick test_costing_matches_execution;
          Alcotest.test_case "monotone in selectivity" `Quick test_costing_monotone_in_selectivity;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "fixed-selectivity curves and crossovers" `Quick
            test_fixed_selectivity_and_crossovers;
          Alcotest.test_case "sargable extraction" `Quick test_sargable_extraction;
          Alcotest.test_case "access paths" `Quick test_access_path_enumeration;
          Alcotest.test_case "picks the cheapest" `Quick test_optimizer_picks_cheapest_alternative;
          Alcotest.test_case "plan choice shifts with threshold" `Quick
            test_plan_choice_shifts_with_threshold;
          Alcotest.test_case "join enumeration" `Quick test_join_enumeration_produces_joins;
          Alcotest.test_case "oracle optimizer has low regret" `Quick
            test_oracle_optimizer_low_regret;
          Alcotest.test_case "invalid query" `Quick test_optimize_invalid_query;
          Alcotest.test_case "explain" `Quick test_explain_output;
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
          QCheck_alcotest.to_alcotest prop_random_query_pipeline;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hit on repeat (modulo commutation)" `Quick test_cache_hit_on_repeat;
          Alcotest.test_case "refresh invalidates" `Quick test_cache_invalidated_by_refresh;
          Alcotest.test_case "unrelated injection leaves hits servable" `Quick
            test_cache_survives_unrelated_injection;
          Alcotest.test_case "LRU eviction order and capacity" `Quick test_cache_lru_eviction;
          Alcotest.test_case "re-insert at capacity evicts nothing" `Quick
            test_cache_reinsert_at_capacity_evicts_nothing;
          Alcotest.test_case "errors are not cached" `Quick test_cache_never_caches_errors;
        ] );
    ]
