(* qcheck equivalence laws for the logical rewrite layer: every rule
   preserves results on randomly generated queries, the driver reaches a
   fixpoint and is idempotent, commuting rule pairs are order-insensitive,
   ORDER BY/LIMIT pushdown strictly drops pages under streaming early
   exit, and fingerprint canonicalization merges respelled queries without
   conflating semantically distinct ones. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let v_int i = Value.Int i
let check_bool = Alcotest.(check bool)

(* Same sensors world as test_optimizer: readings(r_id, site, temp, alert)
   with indexes on temp/alert/site, sites(site_id, zone), FK
   readings.site -> sites.site_id.  Every rule has something to chew on:
   an indexed ORDER BY key, an FK edge to decorrelate along and to restate
   redundantly, qualified residual conjuncts to push down. *)
let fixture ?(rows = 2000) () =
  let rng = Rq_math.Rng.create 61 in
  let catalog = Catalog.create () in
  let sites = 25 in
  Catalog.add_table catalog ~primary_key:"site_id"
    (Relation.create ~name:"sites"
       ~schema:
         (Schema.create
            [
              { Schema.name = "site_id"; ty = Value.T_int };
              { Schema.name = "zone"; ty = Value.T_int };
            ])
       (Array.init sites (fun i -> [| v_int i; v_int (i mod 5) |])));
  Catalog.add_table catalog ~primary_key:"r_id"
    (Relation.create ~name:"readings"
       ~schema:
         (Schema.create
            [
              { Schema.name = "r_id"; ty = Value.T_int };
              { Schema.name = "site"; ty = Value.T_int };
              { Schema.name = "temp"; ty = Value.T_int };
              { Schema.name = "alert"; ty = Value.T_int };
            ])
       (Array.init rows (fun i ->
            let temp = Rq_math.Rng.int rng 1000 in
            [|
              v_int i;
              v_int (Rq_math.Rng.int rng sites);
              v_int temp;
              v_int (if temp >= 980 then 1 else 0);
            |])));
  Catalog.add_foreign_key catalog
    { from_table = "readings"; from_column = "site"; to_table = "sites"; to_column = "site_id" };
  List.iter
    (fun (table, column) -> Catalog.build_index catalog ~table ~column)
    [ ("readings", "temp"); ("readings", "alert"); ("readings", "site"); ("sites", "site_id") ];
  catalog

let build_stats ?(sample_size = 300) catalog seed =
  Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create seed)
    ~config:{ Rq_stats.Stats_store.default_config with sample_size }
    catalog

let catalog = fixture ()
let stats = build_stats catalog 97

(* Execute a query end to end.  Scalar subqueries cannot run unrewritten,
   so queries carrying one go through the full rewrite on both sides of a
   law; everything else executes with the rewrite pass off, which is what
   isolates the single rule under test. *)
let run_q q =
  let opt = Optimizer.robust stats in
  let d = Optimizer.optimize_exn ~rewrite:(q.Logical.scalars <> []) opt q in
  let meter = Cost.create () in
  Executor.run catalog meter d.Optimizer.plan

(* ------------------------------------------------------------------ *)
(* Query generator                                                     *)
(* ------------------------------------------------------------------ *)

let render_query (q : Logical.t) =
  let tables =
    String.concat ", "
      (List.map
         (fun (r : Logical.table_ref) ->
           r.Logical.table ^ "[" ^ Pred.render r.Logical.pred ^ "]")
         q.Logical.tables)
  in
  let sj (s : Logical.semijoin) =
    Printf.sprintf "%s IN %s(%s)[%s]" s.Logical.outer_key s.Logical.inner.Logical.table
      s.Logical.inner_key
      (Pred.render s.Logical.inner.Logical.pred)
  in
  let sc (s : Logical.scalar) =
    Printf.sprintf "%s ? %s[%s]" (Expr.render s.Logical.s_expr) s.Logical.s_table
      (Pred.render s.Logical.s_pred)
  in
  Printf.sprintf "FROM %s WHERE %s%s%s GROUP [%s] AGGS %d PROJ %s ORDER [%s] LIMIT %s"
    tables
    (Pred.render q.Logical.residual)
    (match q.Logical.semijoins with
    | [] -> ""
    | l -> " SEMI " ^ String.concat "; " (List.map sj l))
    (match q.Logical.scalars with
    | [] -> ""
    | l -> " SCALAR " ^ String.concat "; " (List.map sc l))
    (String.concat "," q.Logical.group_by)
    (List.length q.Logical.aggs)
    (match q.Logical.projection with None -> "*" | Some c -> String.concat "," c)
    (String.concat ","
       (List.map
          (fun (k : Plan.sort_key) ->
            k.Plan.sort_column ^ if k.Plan.descending then " desc" else " asc")
          q.Logical.order_by))
    (match q.Logical.limit with None -> "-" | Some n -> string_of_int n)

let gen_query : Logical.t QCheck.Gen.t =
  let open QCheck.Gen in
  let base_readings_pred =
    frequency
      [
        (3, return Pred.True);
        (3, map (fun k -> Pred.lt (Expr.col "temp") (Expr.int k)) (int_range 0 1000));
        (2, map (fun k -> Pred.ge (Expr.col "temp") (Expr.int k)) (int_range 800 1000));
        (2, map (fun b -> Pred.eq (Expr.col "alert") (Expr.int b)) (int_range 0 1));
        (* bounds sometimes inverted: BETWEEN folds to False *)
        ( 1,
          map2
            (fun lo hi -> Pred.between (Expr.col "temp") (Expr.int lo) (Expr.int hi))
            (int_range 0 500) (int_range 0 500) );
        (1, return (Pred.Cmp (Pred.Lt, Expr.int 1, Expr.int 2)));
        (1, return (Pred.Cmp (Pred.Gt, Expr.Const Value.Null, Expr.int 3)));
        ( 1,
          map
            (fun k -> Pred.lt (Expr.col "temp") (Expr.Add (Expr.int k, Expr.int 7)))
            (int_range 0 900) );
      ]
  in
  (* Wrap with shapes the simplifier normalizes away. *)
  let decorate p =
    frequency
      [
        (5, return p);
        (1, return (Pred.And [ Pred.True; p ]));
        (1, return (Pred.Not (Pred.Not p)));
        (1, return (Pred.And [ p; p ]));
        (1, return (Pred.Or [ p; Pred.False ]));
      ]
  in
  let readings_pred = base_readings_pred >>= decorate in
  let sites_pred =
    frequency
      [
        (3, return Pred.True);
        (2, map (fun k -> Pred.lt (Expr.col "zone") (Expr.int k)) (int_range 1 5));
        (1, map (fun k -> Pred.le (Expr.col "site_id") (Expr.int k)) (int_range 0 24));
      ]
  in
  (* Semijoin inners must not appear in FROM, so readings-only queries
     filter against sites and vice versa.  The site/site_id pair rides the
     FK edge (decorrelatable); temp/site_id does not. *)
  let semijoin_on_sites =
    frequency
      [
        ( 2,
          map
            (fun k ->
              {
                Logical.outer_key = "readings.site";
                inner = Logical.scan ~pred:(Pred.lt (Expr.col "zone") (Expr.int k)) "sites";
                inner_key = "site_id";
              })
            (int_range 1 5) );
        ( 1,
          map
            (fun k ->
              {
                Logical.outer_key = "readings.temp";
                inner = Logical.scan ~pred:(Pred.le (Expr.col "zone") (Expr.int k)) "sites";
                inner_key = "site_id";
              })
            (int_range 0 4) );
      ]
  in
  let semijoin_on_readings =
    map
      (fun k ->
        {
          Logical.outer_key = "sites.site_id";
          inner = Logical.scan ~pred:(Pred.lt (Expr.col "temp") (Expr.int k)) "readings";
          inner_key = "site";
        })
      (int_range 0 1000)
  in
  let scalar_on_sites =
    frequency
      [
        ( 2,
          map2
            (fun k cmp ->
              {
                Logical.s_expr = Expr.col "readings.temp";
                s_cmp = cmp;
                s_agg = Plan.Max (Expr.col "sites.site_id");
                s_table = "sites";
                s_pred = Pred.le (Expr.col "zone") (Expr.int k);
              })
            (int_range 0 4)
            (oneofl [ Pred.Lt; Pred.Ge ]) );
        ( 1,
          return
            {
              Logical.s_expr = Expr.col "readings.r_id";
              s_cmp = Pred.Lt;
              s_agg = Plan.Count_star;
              s_table = "sites";
              s_pred = Pred.True;
            } );
        (* empty inner: the aggregate is NULL, the comparison folds to False *)
        ( 1,
          return
            {
              Logical.s_expr = Expr.col "readings.temp";
              s_cmp = Pred.Gt;
              s_agg = Plan.Min (Expr.col "sites.zone");
              s_table = "sites";
              s_pred = Pred.gt (Expr.col "zone") (Expr.int 100);
            } );
      ]
  in
  (* Output shape on top of a FROM/WHERE skeleton.  LIMIT is only sound to
     compare across plans when every candidate emits one canonical order:
     single-table plans without a semijoin all emit RID order (or the
     identical stable-sorted order when an ORDER BY is present). *)
  let finish ~tables ~residual ~semijoins ~scalars ~full_cols ~sub_cols ~group_col ~order_col
      ~allow_limit =
    let count_n = { Plan.fn = Plan.Count_star; output_name = "n" } in
    frequency
      [
        ( 5,
          frequency
            [ (3, return None); (1, return (Some full_cols)); (1, return (Some sub_cols)) ]
          >>= fun projection ->
          (match projection with
          | Some cols when not (List.mem order_col cols) -> return []
          | _ ->
              frequency
                [
                  (2, return []);
                  (1, map (fun d -> [ { Plan.sort_column = order_col; descending = d } ]) bool);
                ])
          >>= fun order_by ->
          (if allow_limit && semijoins = [] then
             frequency [ (2, return None); (1, map Option.some (int_range 1 20)) ]
           else return None)
          >>= fun limit ->
          return
            (Logical.query ~residual ~semijoins ~scalars ?projection ~order_by ?limit tables) );
        ( 2,
          return (Logical.query ~residual ~semijoins ~scalars ~aggs:[ count_n ] tables) );
        ( 2,
          return
            (Logical.query ~residual ~semijoins ~scalars ~group_by:[ group_col ]
               ~aggs:[ count_n ] tables) );
        (* projection shadowed by aggregation: project-prune fodder *)
        ( 1,
          return
            (Logical.query ~residual ~semijoins ~scalars ~aggs:[ count_n ]
               ~projection:[ group_col ] tables) );
      ]
  in
  let readings_cols = [ "readings.r_id"; "readings.site"; "readings.temp"; "readings.alert" ] in
  let sites_cols = [ "sites.site_id"; "sites.zone" ] in
  int_range 0 9 >>= fun shape ->
  if shape < 5 then
    readings_pred >>= fun rp ->
    frequency
      [
        (3, return Pred.True);
        (1, map (fun k -> Pred.ge (Expr.col "readings.temp") (Expr.int k)) (int_range 0 1000));
        ( 1,
          map
            (fun k ->
              Pred.And
                [
                  Pred.ge (Expr.col "readings.temp") (Expr.int k);
                  Pred.Cmp (Pred.Lt, Expr.int 3, Expr.int 4);
                ])
            (int_range 0 1000) );
      ]
    >>= fun residual ->
    frequency [ (4, return []); (2, map (fun sj -> [ sj ]) semijoin_on_sites) ]
    >>= fun semijoins ->
    frequency [ (5, return []); (1, map (fun sc -> [ sc ]) scalar_on_sites) ]
    >>= fun scalars ->
    finish
      ~tables:[ { Logical.table = "readings"; pred = rp } ]
      ~residual ~semijoins ~scalars ~full_cols:readings_cols
      ~sub_cols:[ "readings.temp"; "readings.alert" ]
      ~group_col:"readings.alert" ~order_col:"readings.temp" ~allow_limit:true
  else if shape < 9 then
    readings_pred >>= fun rp ->
    sites_pred >>= fun sp ->
    frequency
      [
        (3, return Pred.True);
        (2, return (Pred.Cmp (Pred.Eq, Expr.col "readings.site", Expr.col "sites.site_id")));
        (1, map (fun k -> Pred.ge (Expr.col "readings.temp") (Expr.int k)) (int_range 0 1000));
        ( 1,
          map
            (fun k ->
              Pred.And
                [
                  Pred.Cmp (Pred.Eq, Expr.col "readings.site", Expr.col "sites.site_id");
                  Pred.ge (Expr.col "readings.temp") (Expr.int k);
                ])
            (int_range 0 1000) );
        (* a genuinely multi-table non-FK conjunct: stays residual forever *)
        (1, return (Pred.Cmp (Pred.Le, Expr.col "readings.site", Expr.col "sites.site_id")));
      ]
    >>= fun residual ->
    frequency [ (8, return []); (1, map (fun sc -> [ sc ]) scalar_on_sites) ]
    >>= fun scalars ->
    finish
      ~tables:
        [ { Logical.table = "readings"; pred = rp }; { Logical.table = "sites"; pred = sp } ]
      ~residual ~semijoins:[] ~scalars ~full_cols:(readings_cols @ sites_cols)
      ~sub_cols:[ "readings.temp"; "sites.zone" ] ~group_col:"sites.zone"
      ~order_col:"readings.temp" ~allow_limit:false
  else
    sites_pred >>= fun sp ->
    frequency [ (3, return []); (2, map (fun sj -> [ sj ]) semijoin_on_readings) ]
    >>= fun semijoins ->
    finish
      ~tables:[ { Logical.table = "sites"; pred = sp } ]
      ~residual:Pred.True ~semijoins ~scalars:[] ~full_cols:sites_cols
      ~sub_cols:[ "sites.zone" ] ~group_col:"sites.zone" ~order_col:"sites.zone"
      ~allow_limit:true

let arbitrary_query = QCheck.make ~print:render_query gen_query

(* ------------------------------------------------------------------ *)
(* Laws                                                                *)
(* ------------------------------------------------------------------ *)

(* Soundness: a rule either declines or produces a valid query with the
   same results. *)
let rule_law rule =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s preserves results" rule)
    ~count:35 arbitrary_query
    (fun q ->
      (match Logical.validate catalog q with
      | Error e -> QCheck.Test.fail_reportf "generator produced invalid query: %s" e
      | Ok () -> ());
      match Rewrite.apply_rule catalog rule q with
      | None -> true
      | Some (q', _detail) -> (
          match Logical.validate catalog q' with
          | Error e -> QCheck.Test.fail_reportf "%s broke validity: %s" rule e
          | Ok () ->
              let r = run_q q and r' = run_q q' in
              Rq_experiments.Exp_common.results_equal r r'
              || QCheck.Test.fail_reportf "%s changed results" rule))

(* The driver terminates within budget and its output is a normal form:
   re-running rewrites nothing and returns the same query. *)
let fixpoint_law =
  QCheck.Test.make ~name:"rewrite reaches a fixpoint and is idempotent" ~count:60
    arbitrary_query
    (fun q ->
      let q1, rep1 = Rewrite.rewrite catalog q in
      let q2, rep2 = Rewrite.rewrite catalog q1 in
      if not rep1.Rewrite.fixpoint then
        QCheck.Test.fail_reportf "rule budget exhausted before fixpoint"
      else if rep2.Rewrite.applied <> [] then
        QCheck.Test.fail_reportf "second rewrite still applied %s"
          (String.concat "," (List.map fst rep2.Rewrite.applied))
      else
        q1 = q2
        || QCheck.Test.fail_reportf "rewrite not idempotent: %s <> %s" (render_query q1)
             (render_query q2))

let pair_fixpoint names q =
  let rec go q n =
    if n <= 0 then q
    else
      match List.find_map (fun r -> Rewrite.apply_rule catalog r q) names with
      | None -> q
      | Some (q', _) -> go q' (n - 1)
  in
  go q 128

(* Order insensitivity on commuting pairs: restricting the pass list to
   two rules, both orders drive to the same normal form. *)
let commute_law (a, b) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s / %s commute" a b)
    ~count:35 arbitrary_query
    (fun q ->
      let ab = pair_fixpoint [ a; b ] q and ba = pair_fixpoint [ b; a ] q in
      ab = ba
      || QCheck.Test.fail_reportf "order-sensitive normal forms: %s <> %s" (render_query ab)
           (render_query ba))

let commuting_pairs =
  [
    ("const-fold", "simplify");
    ("filter-pushdown", "cross-product-avoid");
    ("project-prune", "sort-limit-pushdown");
  ]

(* ------------------------------------------------------------------ *)
(* Rule coverage: the laws above are vacuous for a rule that never       *)
(* fires, so pin one crafted firing query per rule.                      *)
(* ------------------------------------------------------------------ *)

let test_rule_coverage () =
  let fires rule q =
    match Rewrite.apply_rule catalog rule q with Some _ -> true | None -> false
  in
  let scan = Logical.scan in
  check_bool "const-fold" true
    (fires "const-fold"
       (Logical.query [ scan ~pred:(Pred.Cmp (Pred.Lt, Expr.int 1, Expr.int 2)) "readings" ]));
  check_bool "simplify" true
    (fires "simplify"
       (Logical.query
          [ scan ~pred:(Pred.And [ Pred.True; Pred.lt (Expr.col "temp") (Expr.int 5) ]) "readings" ]));
  check_bool "scalar-fold" true
    (fires "scalar-fold"
       (Logical.query
          ~scalars:
            [
              {
                Logical.s_expr = Expr.col "readings.temp";
                s_cmp = Pred.Lt;
                s_agg = Plan.Max (Expr.col "sites.site_id");
                s_table = "sites";
                s_pred = Pred.True;
              };
            ]
          [ scan "readings" ]));
  check_bool "filter-pushdown" true
    (fires "filter-pushdown"
       (Logical.query ~residual:(Pred.ge (Expr.col "readings.temp") (Expr.int 5))
          [ scan "readings" ]));
  check_bool "decorrelate" true
    (fires "decorrelate"
       (Logical.query
          ~semijoins:
            [
              {
                Logical.outer_key = "readings.site";
                inner = scan ~pred:(Pred.lt (Expr.col "zone") (Expr.int 3)) "sites";
                inner_key = "site_id";
              };
            ]
          [ scan "readings" ]));
  check_bool "cross-product-avoid" true
    (fires "cross-product-avoid"
       (Logical.query
          ~residual:(Pred.Cmp (Pred.Eq, Expr.col "readings.site", Expr.col "sites.site_id"))
          [ scan "readings"; scan "sites" ]));
  check_bool "project-prune" true
    (fires "project-prune"
       (Logical.query
          ~projection:[ "readings.r_id"; "readings.site"; "readings.temp"; "readings.alert" ]
          [ scan "readings" ]));
  check_bool "sort-limit-pushdown" true
    (fires "sort-limit-pushdown"
       (Logical.query
          ~order_by:[ { Plan.sort_column = "readings.temp"; descending = false } ]
          ~limit:3 [ scan "readings" ]))

let test_unknown_rule_rejected () =
  match Rewrite.apply_rule catalog "no-such-rule" (Logical.query [ Logical.scan "readings" ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an unknown rule"

(* ------------------------------------------------------------------ *)
(* ORDER BY/LIMIT pushdown composes with streaming early exit           *)
(* ------------------------------------------------------------------ *)

let rec plan_exists p plan =
  p plan
  ||
  match plan with
  | Plan.Scan _ | Plan.Scan_resume _ | Plan.Materialized _ | Plan.Star_semijoin _ -> false
  | Plan.Hash_join { build; probe; _ } -> plan_exists p build || plan_exists p probe
  | Plan.Merge_join { left; right; _ } -> plan_exists p left || plan_exists p right
  | Plan.Indexed_nl_join { outer; _ } -> plan_exists p outer
  | Plan.Filter (i, _) | Plan.Project (i, _) | Plan.Limit (i, _) -> plan_exists p i
  | Plan.Sort { input; _ } | Plan.Aggregate { input; _ } | Plan.Guard { input; _ } ->
      plan_exists p input
  | Plan.Append parts -> List.exists (plan_exists p) parts

let is_sort = function Plan.Sort _ -> true | _ -> false

let is_ordered_scan = function
  | Plan.Scan { access = Plan.Index_order _; _ } -> true
  | _ -> false

(* Acceptance criterion: on a large table, ORDER BY temp LIMIT 5 rewritten
   through sort-limit-pushdown picks the ordered index scan, elides the
   Sort, and — streamed — reads strictly fewer pages than the unrewritten
   SeqScan + Sort + Limit plan, while returning the same rows. *)
let test_limit_pushdown_page_drop () =
  let catalog = fixture ~rows:100_000 () in
  let stats = build_stats catalog 91 in
  let opt = Optimizer.robust stats in
  let q =
    Logical.query
      ~order_by:[ { Plan.sort_column = "readings.temp"; descending = false } ]
      ~limit:5
      [ Logical.scan "readings" ]
  in
  let rewritten = Optimizer.optimize_exn ~rewrite:true opt q in
  let plain = Optimizer.optimize_exn ~rewrite:false opt q in
  check_bool "pushdown rule applied" true
    (List.mem_assoc "sort-limit-pushdown" rewritten.Optimizer.rewrites);
  check_bool "rewritten plan scans in index order" true
    (plan_exists is_ordered_scan rewritten.Optimizer.plan);
  check_bool "rewritten plan elides the sort" false
    (plan_exists is_sort rewritten.Optimizer.plan);
  check_bool "unrewritten plan sorts" true (plan_exists is_sort plain.Optimizer.plan);
  let run plan =
    let meter = Cost.create () in
    let res = Executor.run ~mode:Executor.Streaming catalog meter plan in
    let s = Cost.snapshot meter in
    (res, s.Cost.seq_pages + s.Cost.random_pages)
  in
  let res_r, pages_r = run rewritten.Optimizer.plan in
  let res_p, pages_p = run plain.Optimizer.plan in
  check_bool "same rows" true (Rq_experiments.Exp_common.results_equal res_r res_p);
  Alcotest.(check int) "limit honored" 5 (Array.length res_r.Executor.tuples);
  if not (pages_r < pages_p) then
    Alcotest.failf "pages did not drop: rewritten %d >= unrewritten %d" pages_r pages_p

(* ------------------------------------------------------------------ *)
(* Fingerprint stability under rewriting                                *)
(* ------------------------------------------------------------------ *)

let key ?estimator q =
  Rq_sql.Fingerprint.to_key (Rq_sql.Fingerprint.of_logical ?estimator q)

let base_query =
  Logical.query [ Logical.scan ~pred:(Pred.ge (Expr.col "temp") (Expr.int 980)) "readings" ]

(* Differently spelled but identical queries share one cache key. *)
let test_fingerprint_canonical_merge () =
  let respelled_pushdown =
    Logical.query
      ~residual:(Pred.ge (Expr.col "readings.temp") (Expr.int 980))
      [ Logical.scan "readings" ]
  in
  let respelled_noise =
    Logical.query
      [
        Logical.scan
          ~pred:
            (Pred.And
               [
                 Pred.True;
                 Pred.ge (Expr.col "temp") (Expr.int 980);
                 Pred.ge (Expr.col "temp") (Expr.int 980);
               ])
          "readings";
      ]
  in
  Alcotest.(check string) "residual spelling pushed down" (key base_query)
    (key respelled_pushdown);
  Alcotest.(check string) "noise conjuncts simplified away" (key base_query)
    (key respelled_noise);
  let count_n = { Plan.fn = Plan.Count_star; output_name = "n" } in
  let agg q projection =
    Logical.query ~aggs:[ count_n ] ?projection
      [ Logical.scan ~pred:(Pred.ge (Expr.col "temp") (Expr.int q)) "readings" ]
  in
  Alcotest.(check string) "aggregation-shadowed projection pruned"
    (key (agg 980 None))
    (key (agg 980 (Some [ "readings.temp" ])))

(* The pure rewrite pipeline only respells the query, so the full rewrite
   of a scalar-free, semijoin-free query keeps its cache key (index_order
   is a physical knob, deliberately outside the key). *)
let test_fingerprint_stable_across_rewrite () =
  let q =
    Logical.query
      ~residual:(Pred.ge (Expr.col "readings.temp") (Expr.int 500))
      ~order_by:[ { Plan.sort_column = "readings.temp"; descending = false } ]
      ~limit:7
      [ Logical.scan "readings" ]
  in
  let q', _report = Rewrite.rewrite catalog q in
  Alcotest.(check string) "rewritten form shares the key" (key q) (key q')

(* Queries with different semantics must keep distinct keys — regression
   for the widened surface (semijoins, scalars, residuals, ORDER BY and
   LIMIT were once invisible to the fingerprint). *)
let test_fingerprint_distinct_semantics () =
  let distinct name q = check_bool name false (String.equal (key base_query) (key q)) in
  distinct "different selectivity"
    (Logical.query [ Logical.scan ~pred:(Pred.ge (Expr.col "temp") (Expr.int 981)) "readings" ]);
  let base_pred = Pred.ge (Expr.col "temp") (Expr.int 980) in
  let with_ q = q [ Logical.scan ~pred:base_pred "readings" ] in
  distinct "limit in key" (with_ (Logical.query ~limit:5));
  distinct "order in key"
    (with_
       (Logical.query ~order_by:[ { Plan.sort_column = "readings.temp"; descending = true } ]));
  distinct "semijoin in key"
    (with_
       (Logical.query
          ~semijoins:
            [
              {
                Logical.outer_key = "readings.site";
                inner = Logical.scan "sites";
                inner_key = "site_id";
              };
            ]));
  distinct "scalar in key"
    (with_
       (Logical.query
          ~scalars:
            [
              {
                Logical.s_expr = Expr.col "readings.temp";
                s_cmp = Pred.Lt;
                s_agg = Plan.Max (Expr.col "sites.site_id");
                s_table = "sites";
                s_pred = Pred.True;
              };
            ]));
  distinct "cross-table residual in key"
    (Logical.query
       ~residual:(Pred.Cmp (Pred.Le, Expr.col "readings.site", Expr.col "sites.site_id"))
       [ Logical.scan ~pred:base_pred "readings"; Logical.scan "sites" ]);
  check_bool "estimator tag in key" false
    (String.equal (key ~estimator:"robust" base_query) (key ~estimator:"baseline" base_query))

(* The exact canonical key, pinned so plan caches persisted by one build
   are readable by the next. *)
let test_fingerprint_cross_session_key () =
  Alcotest.(check string) "pinned canonical key"
    "t:readings[(>= c:temp v:980)];r:true;s:;q:;g:;a:;p:*;o:;l:;e:;T:;"
    (key base_query)

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rewrite"
    [
      ( "coverage",
        [
          Alcotest.test_case "every rule fires on a crafted query" `Quick test_rule_coverage;
          Alcotest.test_case "unknown rule rejected" `Quick test_unknown_rule_rejected;
        ] );
      ("soundness", qc (List.map rule_law Rewrite.rule_names));
      ("fixpoint", qc [ fixpoint_law ]);
      ("rule order", qc (List.map commute_law commuting_pairs));
      ( "limit pushdown",
        [
          Alcotest.test_case "ordered scan elides sort and drops pages" `Quick
            test_limit_pushdown_page_drop;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "canonicalization merges respellings" `Quick
            test_fingerprint_canonical_merge;
          Alcotest.test_case "rewrite keeps the cache key" `Quick
            test_fingerprint_stable_across_rewrite;
          Alcotest.test_case "distinct semantics keep distinct keys" `Quick
            test_fingerprint_distinct_semantics;
          Alcotest.test_case "cross-session key pinned" `Quick
            test_fingerprint_cross_session_key;
        ] );
    ]
