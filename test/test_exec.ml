(* Unit and property tests for rq_exec: expressions, predicates, the cost
   meter, and the executor (every operator is cross-checked against a
   reference evaluation; access paths are cross-checked against each
   other). *)

open Rq_storage
open Rq_exec

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Expr                                                                *)
(* ------------------------------------------------------------------ *)

let expr_schema =
  Schema.create
    [
      { Schema.name = "a"; ty = Value.T_int };
      { Schema.name = "b"; ty = Value.T_float };
      { Schema.name = "d"; ty = Value.T_date };
    ]

let sample_tuple = [| v_int 6; Value.Float 2.5; Value.Date 100 |]

let eval e = Expr.eval expr_schema e sample_tuple

let test_expr_arithmetic () =
  Alcotest.(check bool) "int add" true (Value.equal (v_int 8) (eval (Expr.Add (Expr.col "a", Expr.int 2))));
  Alcotest.(check bool) "mixed mul" true
    (Value.equal (Value.Float 15.0) (eval (Expr.Mul (Expr.col "a", Expr.col "b"))));
  Alcotest.(check bool) "int div truncates" true
    (Value.equal (v_int 3) (eval (Expr.Div (Expr.col "a", Expr.int 2))));
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (eval (Expr.Div (Expr.col "a", Expr.int 0))))

let test_expr_null_propagation () =
  let tuple = [| Value.Null; Value.Float 1.0; Value.Date 0 |] in
  check_bool "null + 1 = null" true
    (Value.is_null (Expr.eval expr_schema (Expr.Add (Expr.col "a", Expr.int 1)) tuple))

let test_expr_date_arithmetic () =
  Alcotest.(check bool) "add days" true
    (Value.equal (Value.Date 130) (eval (Expr.Add_days (Expr.col "d", 30))))

let test_expr_columns () =
  Alcotest.(check (list string)) "deduplicated, in order" [ "a"; "b" ]
    (Expr.columns (Expr.Add (Expr.col "a", Expr.Mul (Expr.col "b", Expr.col "a"))))

let test_expr_const_value () =
  check_bool "constant folds" true
    (match Expr.const_value (Expr.Add (Expr.int 2, Expr.int 3)) with
    | Some (Value.Int 5) -> true
    | _ -> false);
  check_bool "date folding" true
    (match Expr.const_value (Expr.Add_days (Expr.date ~year:1970 ~month:1 ~day:1, 10)) with
    | Some (Value.Date 10) -> true
    | _ -> false);
  check_bool "columns do not fold" true (Expr.const_value (Expr.col "a") = None)

let test_expr_unknown_column () =
  Alcotest.check_raises "unknown column" Not_found (fun () ->
      ignore (Expr.eval expr_schema (Expr.col "zz") sample_tuple))

(* ------------------------------------------------------------------ *)
(* Pred                                                                *)
(* ------------------------------------------------------------------ *)

let holds p = Pred.eval expr_schema p sample_tuple

let test_pred_comparisons () =
  check_bool "eq" true (holds (Pred.eq (Expr.col "a") (Expr.int 6)));
  check_bool "ne" true (holds (Pred.Cmp (Pred.Ne, Expr.col "a", Expr.int 5)));
  check_bool "lt" false (holds (Pred.lt (Expr.col "a") (Expr.int 6)));
  check_bool "le" true (holds (Pred.le (Expr.col "a") (Expr.int 6)));
  check_bool "between" true (holds (Pred.between (Expr.col "a") (Expr.int 5) (Expr.int 7)));
  check_bool "between exclusive" false
    (holds (Pred.between (Expr.col "a") (Expr.int 7) (Expr.int 9)))

let test_pred_null_semantics () =
  let tuple = [| Value.Null; Value.Float 1.0; Value.Date 0 |] in
  let eval_p p = Pred.eval expr_schema p tuple in
  check_bool "null = 6 is false" false (eval_p (Pred.eq (Expr.col "a") (Expr.int 6)));
  check_bool "null <> 6 is false too" false (eval_p (Pred.Cmp (Pred.Ne, Expr.col "a", Expr.int 6)));
  check_bool "not(null = 6) is true under collapsed 2VL" true
    (eval_p (Pred.Not (Pred.eq (Expr.col "a") (Expr.int 6))))

let test_pred_boolean_connectives () =
  check_bool "and" true
    (holds (Pred.conj [ Pred.ge (Expr.col "a") (Expr.int 6); Pred.le (Expr.col "a") (Expr.int 6) ]));
  check_bool "or" true
    (holds (Pred.Or [ Pred.eq (Expr.col "a") (Expr.int 0); Pred.eq (Expr.col "a") (Expr.int 6) ]));
  check_bool "not" false (holds (Pred.Not Pred.True))

let test_pred_contains () =
  let schema = Schema.create [ { Schema.name = "s"; ty = Value.T_string } ] in
  let eval_on v p = Pred.eval schema p [| v |] in
  check_bool "substring present" true
    (eval_on (Value.String "hello world") (Pred.Contains (Expr.col "s", "lo wo")));
  check_bool "substring absent" false
    (eval_on (Value.String "hello") (Pred.Contains (Expr.col "s", "xyz")));
  check_bool "empty needle" true (eval_on (Value.String "abc") (Pred.Contains (Expr.col "s", "")));
  check_bool "non-string" false (eval_on (v_int 3) (Pred.Contains (Expr.col "s", "3")))

let test_pred_conj_flattening () =
  let p = Pred.conj [ Pred.True; Pred.conj [ Pred.True; Pred.eq (Expr.col "a") (Expr.int 1) ] ] in
  check_int "flattened to single conjunct" 1 (List.length (Pred.conjuncts p));
  check_bool "conj [] = True" true (Pred.conj [] = Pred.True);
  check_bool "False absorbs" true (Pred.conj [ Pred.False; Pred.True; Pred.eq (Expr.col "a") (Expr.int 1) ] = Pred.False)

let test_pred_rename () =
  let p = Pred.eq (Expr.col "a") (Expr.col "b") in
  let renamed = Pred.rename_columns (fun c -> "t." ^ c) p in
  Alcotest.(check (list string)) "renamed" [ "t.a"; "t.b" ] (Pred.columns renamed)

(* ------------------------------------------------------------------ *)
(* Cost meter                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_accumulation () =
  let meter = Cost.create () in
  Cost.charge_seq_pages meter 10;
  Cost.charge_random_pages meter 2;
  let snap = Cost.snapshot meter in
  check_int "seq pages" 10 snap.Cost.seq_pages;
  check_int "random pages" 2 snap.Cost.random_pages;
  check_float "seconds" ((10.0 *. 1e-3) +. (2.0 *. 3.5e-3)) snap.Cost.seconds;
  Cost.reset meter;
  check_float "reset" 0.0 (Cost.snapshot meter).Cost.seconds

let test_cost_scale () =
  let meter = Cost.create ~scale:100.0 () in
  Cost.charge_seq_pages meter 1;
  check_float "scaled" 0.1 (Cost.snapshot meter).Cost.seconds;
  Alcotest.check_raises "bad scale" (Invalid_argument "Cost.create: scale must be positive")
    (fun () -> ignore (Cost.create ~scale:0.0 ()))

let test_cost_sort_charge () =
  let meter = Cost.create () in
  Cost.charge_sort meter 1024;
  (* 1024 * log2(1024) * 2e-8 = 1024 * 10 * 2e-8 *)
  check_float "n log n" (1024.0 *. 10.0 *. 2.0e-8) (Cost.snapshot meter).Cost.seconds

(* ------------------------------------------------------------------ *)
(* Executor fixture: a correlated table plus a parent for joins        *)
(* ------------------------------------------------------------------ *)

let fixture_catalog ?(rows = 2000) () =
  let rng = Rq_math.Rng.create 31 in
  let item_schema =
    Schema.create
      [
        { Schema.name = "item_id"; ty = Value.T_int };
        { Schema.name = "grp"; ty = Value.T_int };       (* FK to groups *)
        { Schema.name = "x"; ty = Value.T_int };
        { Schema.name = "y"; ty = Value.T_int };         (* correlated with x *)
        { Schema.name = "price"; ty = Value.T_float };
      ]
  in
  let group_schema =
    Schema.create
      [ { Schema.name = "grp_id"; ty = Value.T_int }; { Schema.name = "region"; ty = Value.T_int } ]
  in
  let groups = 50 in
  let items =
    Array.init rows (fun i ->
        let x = Rq_math.Rng.int rng 100 in
        [|
          v_int i;
          v_int (Rq_math.Rng.int rng groups);
          v_int x;
          v_int (x + Rq_math.Rng.int rng 10);
          Value.Float (float_of_int (Rq_math.Rng.int rng 1000));
        |])
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"item_id"
    (Relation.create ~name:"items" ~schema:item_schema items);
  Catalog.add_table catalog ~primary_key:"grp_id"
    (Relation.create ~name:"groups" ~schema:group_schema
       (Array.init groups (fun g -> [| v_int g; v_int (g mod 5) |])));
  Catalog.add_foreign_key catalog
    { from_table = "items"; from_column = "grp"; to_table = "groups"; to_column = "grp_id" };
  List.iter
    (fun (table, column) -> Catalog.build_index catalog ~table ~column)
    [ ("items", "x"); ("items", "y"); ("items", "grp"); ("groups", "grp_id") ];
  catalog

let run_plan catalog plan =
  let meter = Cost.create () in
  let result = Executor.run catalog meter plan in
  (result, Cost.snapshot meter)

(* Order-insensitive comparison of result tuples. *)
let sorted_rows (result : Executor.result) =
  let rows = Array.map (fun tup -> Array.map Value.to_string tup) result.Executor.tuples in
  let rows = Array.to_list rows in
  List.sort compare rows

let check_same_rows msg a b = Alcotest.(check (list (array string))) msg (sorted_rows a) (sorted_rows b)

let items_pred =
  Pred.conj
    [
      Pred.between (Expr.col "x") (Expr.int 20) (Expr.int 40);
      Pred.between (Expr.col "y") (Expr.int 25) (Expr.int 45);
    ]

let test_access_paths_agree () =
  let catalog = fixture_catalog () in
  let scan access = Plan.Scan { table = "items"; access; pred = items_pred } in
  let seq, _ = run_plan catalog (scan Plan.Seq_scan) in
  let range, _ =
    run_plan catalog
      (scan (Plan.Index_range { Plan.column = "x"; lo = Some (v_int 20); hi = Some (v_int 40) }))
  in
  let isect, _ =
    run_plan catalog
      (scan
         (Plan.Index_intersect
            [
              { Plan.column = "x"; lo = Some (v_int 20); hi = Some (v_int 40) };
              { Plan.column = "y"; lo = Some (v_int 25); hi = Some (v_int 45) };
            ]))
  in
  check_bool "non-trivial result" true (Array.length seq.Executor.tuples > 0);
  check_same_rows "range = seq" seq range;
  check_same_rows "intersect = seq" seq isect

let test_access_path_costs () =
  let catalog = fixture_catalog ~rows:20_000 () in
  (* Very selective predicate: index intersection must beat the scan.  Wide
     predicate: the scan must win. *)
  let cost pred access =
    snd (run_plan catalog (Plan.Scan { table = "items"; access; pred }))
  in
  let narrow = Pred.conj [ Pred.eq (Expr.col "x") (Expr.int 3); Pred.eq (Expr.col "y") (Expr.int 3) ] in
  let isect pred =
    (cost pred
       (Plan.Index_intersect
          [
            { Plan.column = "x"; lo = Some (v_int 3); hi = Some (v_int 3) };
            { Plan.column = "y"; lo = Some (v_int 3); hi = Some (v_int 3) };
          ])).Cost.seconds
  in
  let wide = Pred.conj [ Pred.ge (Expr.col "x") (Expr.int 0); Pred.ge (Expr.col "y") (Expr.int 0) ] in
  let isect_wide =
    (cost wide
       (Plan.Index_intersect
          [
            { Plan.column = "x"; lo = Some (v_int 0); hi = None };
            { Plan.column = "y"; lo = Some (v_int 0); hi = None };
          ])).Cost.seconds
  in
  let seq_cost = (cost wide Plan.Seq_scan).Cost.seconds in
  check_bool "narrow: intersection beats scan" true (isect narrow < seq_cost);
  check_bool "wide: scan beats intersection" true (seq_cost < isect_wide)

let join_query pred =
  [ { Rq_optimizer.Logical.table = "items"; pred };
    { Rq_optimizer.Logical.table = "groups"; pred = Pred.eq (Expr.col "region") (Expr.int 2) } ]

let test_join_operators_agree () =
  let catalog = fixture_catalog () in
  let items_scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = items_pred } in
  let groups_pred = Pred.eq (Expr.col "region") (Expr.int 2) in
  let groups_scan = Plan.Scan { table = "groups"; access = Plan.Seq_scan; pred = groups_pred } in
  let hash, _ =
    run_plan catalog
      (Plan.Hash_join
         { build = groups_scan; probe = items_scan; build_key = "groups.grp_id"; probe_key = "items.grp" })
  in
  let merge, _ =
    run_plan catalog
      (Plan.Merge_join
         { left = groups_scan; right = items_scan; left_key = "groups.grp_id"; right_key = "items.grp" })
  in
  let inl, _ =
    run_plan catalog
      (Plan.Indexed_nl_join
         {
           outer = groups_scan;
           outer_key = "groups.grp_id";
           inner_table = "items";
           inner_key = "grp";
           inner_pred = items_pred;
         })
  in
  (* The reference: the naive evaluator over the logical refs.  Column order
     differs (naive uses BFS-from-root order), so compare projections. *)
  let naive = Rq_optimizer.Naive.evaluate catalog (join_query items_pred) in
  check_int "hash join cardinality matches naive" (Array.length naive.Executor.tuples)
    (Array.length hash.Executor.tuples);
  (* hash and merge output (groups ++ items); inl outputs (groups ++ items). *)
  check_same_rows "merge = hash" hash merge;
  check_same_rows "inl = hash" hash inl

let test_hash_join_empty_side () =
  let catalog = fixture_catalog () in
  let empty_scan =
    Plan.Scan { table = "groups"; access = Plan.Seq_scan; pred = Pred.False }
  in
  let items_scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  let result, _ =
    run_plan catalog
      (Plan.Hash_join
         { build = empty_scan; probe = items_scan; build_key = "groups.grp_id"; probe_key = "items.grp" })
  in
  check_int "empty build side" 0 (Array.length result.Executor.tuples)

let test_merge_join_sort_charge () =
  let catalog = fixture_catalog () in
  (* groups scanned on its clustered key: no sort.  items joined on grp (not
     its clustering key, item_id): must be sorted, and the result must still
     be correct (covered by test_join_operators_agree); here we check the
     clustered side skips the sort by comparing costs. *)
  let groups_scan = Plan.Scan { table = "groups"; access = Plan.Seq_scan; pred = Pred.True } in
  let items_scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  let clustered, clustered_cost =
    run_plan catalog
      (Plan.Merge_join
         { left = groups_scan; right = items_scan; left_key = "groups.grp_id"; right_key = "items.grp" })
  in
  (* Wrapping the clustered side in a no-op Filter hides its physical order
     from the merge join, which must then charge a sort. *)
  let wrapped, wrapped_cost =
    run_plan catalog
      (Plan.Merge_join
         {
           left = Plan.Filter (groups_scan, Pred.True);
           right = items_scan;
           left_key = "groups.grp_id";
           right_key = "items.grp";
         })
  in
  check_same_rows "same result either way" clustered wrapped;
  check_bool "hidden order forces a sort charge" true
    (wrapped_cost.Cost.seconds > clustered_cost.Cost.seconds)

let test_filter_project () =
  let catalog = fixture_catalog () in
  let scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  let filtered, _ =
    run_plan catalog (Plan.Filter (scan, Pred.eq (Expr.col "items.x") (Expr.int 5)))
  in
  let direct, _ =
    run_plan catalog
      (Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.eq (Expr.col "x") (Expr.int 5) })
  in
  check_same_rows "filter above = pushed down" direct filtered;
  let projected, _ = run_plan catalog (Plan.Project (scan, [ "items.x"; "items.item_id" ])) in
  check_int "projected arity" 2 (Schema.arity projected.Executor.schema);
  check_int "projected rows" 2000 (Array.length projected.Executor.tuples);
  Alcotest.(check string) "column order" "items.x"
    (Schema.column_at projected.Executor.schema 0).Schema.name

let test_aggregate_known () =
  let schema =
    Schema.create
      [ { Schema.name = "g"; ty = Value.T_int }; { Schema.name = "v"; ty = Value.T_float } ]
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Relation.create ~name:"t" ~schema
       [|
         [| v_int 1; Value.Float 10.0 |];
         [| v_int 1; Value.Float 20.0 |];
         [| v_int 2; Value.Float 5.0 |];
         [| v_int 2; Value.Null |];
       |]);
  let scan = Plan.Scan { table = "t"; access = Plan.Seq_scan; pred = Pred.True } in
  let result, _ =
    run_plan catalog
      (Plan.Aggregate
         {
           input = scan;
           group_by = [ "t.g" ];
           aggs =
             [
               { Plan.fn = Plan.Count_star; output_name = "n" };
               { Plan.fn = Plan.Count (Expr.col "t.v"); output_name = "n_v" };
               { Plan.fn = Plan.Sum (Expr.col "t.v"); output_name = "total" };
               { Plan.fn = Plan.Avg (Expr.col "t.v"); output_name = "mean" };
               { Plan.fn = Plan.Min (Expr.col "t.v"); output_name = "lo" };
               { Plan.fn = Plan.Max (Expr.col "t.v"); output_name = "hi" };
             ];
         })
  in
  check_int "two groups" 2 (Array.length result.Executor.tuples);
  let row_of g =
    Array.to_list result.Executor.tuples
    |> List.find (fun tup -> Value.equal tup.(0) (v_int g))
  in
  let g1 = row_of 1 and g2 = row_of 2 in
  check_bool "count g1" true (Value.equal g1.(1) (v_int 2));
  check_bool "count(v) g1" true (Value.equal g1.(2) (v_int 2));
  check_bool "sum g1" true (Value.equal g1.(3) (Value.Float 30.0));
  check_bool "avg g1" true (Value.equal g1.(4) (Value.Float 15.0));
  check_bool "count* counts null rows" true (Value.equal g2.(1) (v_int 2));
  check_bool "count(v) skips nulls" true (Value.equal g2.(2) (v_int 1));
  check_bool "sum skips nulls" true (Value.equal g2.(3) (Value.Float 5.0));
  check_bool "min g2" true (Value.equal g2.(5) (Value.Float 5.0));
  check_bool "max g2" true (Value.equal g2.(6) (Value.Float 5.0))

let test_aggregate_empty_input () =
  let catalog = fixture_catalog () in
  let scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.False } in
  let result, _ =
    run_plan catalog
      (Plan.Aggregate
         {
           input = scan;
           group_by = [];
           aggs =
             [
               { Plan.fn = Plan.Count_star; output_name = "n" };
               { Plan.fn = Plan.Sum (Expr.col "items.price"); output_name = "total" };
             ];
         })
  in
  check_int "one grand-total row" 1 (Array.length result.Executor.tuples);
  check_bool "count 0" true (Value.equal result.Executor.tuples.(0).(0) (v_int 0));
  check_bool "sum null" true (Value.is_null result.Executor.tuples.(0).(1))

let test_sort_and_limit () =
  let catalog = fixture_catalog ~rows:500 () in
  let scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  let sorted, sorted_cost =
    run_plan catalog
      (Plan.Sort { input = scan; keys = [ { Plan.sort_column = "items.x"; descending = false } ] })
  in
  let pos = Schema.index_of sorted.Executor.schema "items.x" in
  let ascending = ref true in
  Array.iteri
    (fun i tup ->
      if i > 0 && Value.compare tup.(pos) sorted.Executor.tuples.(i - 1).(pos) < 0 then
        ascending := false)
    sorted.Executor.tuples;
  check_bool "ascending order" true !ascending;
  let _, unsorted_cost = run_plan catalog scan in
  check_bool "sorting is charged" true (sorted_cost.Cost.seconds > unsorted_cost.Cost.seconds);
  (* DESC reverses the leading key. *)
  let desc, _ =
    run_plan catalog
      (Plan.Sort { input = scan; keys = [ { Plan.sort_column = "items.x"; descending = true } ] })
  in
  check_bool "desc head >= asc head" true
    (Value.compare desc.Executor.tuples.(0).(pos) sorted.Executor.tuples.(0).(pos) >= 0);
  (* Limit truncates; over-limit is a no-op. *)
  let limited, _ = run_plan catalog (Plan.Limit (scan, 7)) in
  check_int "limit" 7 (Array.length limited.Executor.tuples);
  let all, _ = run_plan catalog (Plan.Limit (scan, 10_000)) in
  check_int "limit beyond input" 500 (Array.length all.Executor.tuples)

let test_sort_stability () =
  (* Equal keys keep input order: sorting by a constant column is the
     identity permutation. *)
  let catalog = fixture_catalog ~rows:100 () in
  let scan = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  let base, _ = run_plan catalog scan in
  let sorted, _ =
    run_plan catalog
      (Plan.Sort { input = scan; keys = [ { Plan.sort_column = "items.grp"; descending = false } ] })
  in
  (* Within each group, item_id (input order) must stay increasing. *)
  let grp = Schema.index_of sorted.Executor.schema "items.grp" in
  let idp = Schema.index_of sorted.Executor.schema "items.item_id" in
  let stable = ref true in
  Array.iteri
    (fun i tup ->
      if i > 0 then begin
        let prev = sorted.Executor.tuples.(i - 1) in
        if Value.equal prev.(grp) tup.(grp) && Value.compare prev.(idp) tup.(idp) >= 0 then
          stable := false
      end)
    sorted.Executor.tuples;
  check_bool "stable within groups" true !stable;
  check_int "row count preserved" (Array.length base.Executor.tuples)
    (Array.length sorted.Executor.tuples)

let test_joins_skip_null_keys () =
  (* SQL join semantics: NULL keys never match, on either side, in any
     join operator. *)
  let schema_l =
    Schema.create [ { Schema.name = "lk"; ty = Value.T_int }; { Schema.name = "lv"; ty = Value.T_int } ]
  in
  let schema_r =
    Schema.create [ { Schema.name = "rk"; ty = Value.T_int }; { Schema.name = "rv"; ty = Value.T_int } ]
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Relation.create ~name:"l" ~schema:schema_l
       [| [| v_int 1; v_int 10 |]; [| Value.Null; v_int 20 |]; [| v_int 2; v_int 30 |] |]);
  Catalog.add_table catalog
    (Relation.create ~name:"r" ~schema:schema_r
       [| [| v_int 1; v_int 100 |]; [| Value.Null; v_int 200 |] |]);
  let scan t = Plan.Scan { table = t; access = Plan.Seq_scan; pred = Pred.True } in
  let hash, _ =
    run_plan catalog
      (Plan.Hash_join { build = scan "r"; probe = scan "l"; build_key = "r.rk"; probe_key = "l.lk" })
  in
  check_int "hash: only the non-null match" 1 (Array.length hash.Executor.tuples);
  let merge, _ =
    run_plan catalog
      (Plan.Merge_join { left = scan "r"; right = scan "l"; left_key = "r.rk"; right_key = "l.lk" })
  in
  check_int "merge agrees" 1 (Array.length merge.Executor.tuples)

let test_sort_nulls_first () =
  let schema = Schema.create [ { Schema.name = "v"; ty = Value.T_int } ] in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Relation.create ~name:"t" ~schema
       [| [| v_int 5 |]; [| Value.Null |]; [| v_int 1 |] |]);
  let sorted, _ =
    run_plan catalog
      (Plan.Sort
         {
           input = Plan.Scan { table = "t"; access = Plan.Seq_scan; pred = Pred.True };
           keys = [ { Plan.sort_column = "t.v"; descending = false } ];
         })
  in
  check_bool "NULL sorts first ascending" true
    (Value.is_null sorted.Executor.tuples.(0).(0));
  check_bool "then the smallest value" true
    (Value.equal sorted.Executor.tuples.(1).(0) (v_int 1))

let test_star_semijoin_exec () =
  (* Exec-level check of the semijoin strategy against the hash cascade on
     a miniature star. *)
  let rng = Rq_math.Rng.create 41 in
  let catalog = Catalog.create () in
  let dim_schema =
    Schema.create [ { Schema.name = "k"; ty = Value.T_int }; { Schema.name = "f"; ty = Value.T_int } ]
  in
  List.iter
    (fun name ->
      Catalog.add_table catalog ~primary_key:"k"
        (Relation.create ~name ~schema:dim_schema
           (Array.init 20 (fun i -> [| v_int i; v_int (i mod 4) |]))))
    [ "d1"; "d2" ];
  let fact_schema =
    Schema.create
      [
        { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "fk1"; ty = Value.T_int };
        { Schema.name = "fk2"; ty = Value.T_int };
      ]
  in
  Catalog.add_table catalog ~primary_key:"id"
    (Relation.create ~name:"f" ~schema:fact_schema
       (Array.init 400 (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng 20); v_int (Rq_math.Rng.int rng 20) |])));
  List.iter
    (fun (col, dim) ->
      Catalog.add_foreign_key catalog
        { from_table = "f"; from_column = col; to_table = dim; to_column = "k" };
      Catalog.build_index catalog ~table:"f" ~column:col)
    [ ("fk1", "d1"); ("fk2", "d2") ];
  let dim_pred = Pred.eq (Expr.col "f") (Expr.int 2) in
  let semijoin =
    Plan.Star_semijoin
      {
        fact = "f";
        fact_pred = Pred.True;
        dims =
          [
            { Plan.dim_table = "d1"; dim_pred; fact_fk = "fk1" };
            { Plan.dim_table = "d2"; dim_pred; fact_fk = "fk2" };
          ];
      }
  in
  let cascade =
    Plan.Hash_join
      {
        build = Plan.Scan { table = "d2"; access = Plan.Seq_scan; pred = dim_pred };
        probe =
          Plan.Hash_join
            {
              build = Plan.Scan { table = "d1"; access = Plan.Seq_scan; pred = dim_pred };
              probe = Plan.Scan { table = "f"; access = Plan.Seq_scan; pred = Pred.True };
              build_key = "d1.k";
              probe_key = "f.fk1";
            };
        build_key = "d2.k";
        probe_key = "f.fk2";
      }
  in
  let semi, _ = run_plan catalog semijoin in
  let casc, _ = run_plan catalog cascade in
  check_int "same cardinality" (Array.length casc.Executor.tuples)
    (Array.length semi.Executor.tuples);
  (* Column orders differ (fact-first vs join order); compare the fact ids. *)
  let ids (res : Executor.result) col =
    let pos = Schema.index_of res.Executor.schema col in
    Array.to_list (Array.map (fun tup -> Value.to_string tup.(pos)) res.Executor.tuples)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "same fact rows" (ids casc "f.id") (ids semi "f.id")

let test_plan_validate () =
  let catalog = fixture_catalog () in
  let bad_index =
    Plan.Scan
      {
        table = "items";
        access = Plan.Index_range { Plan.column = "price"; lo = None; hi = None };
        pred = Pred.True;
      }
  in
  check_bool "missing index rejected" true (Result.is_error (Plan.validate catalog bad_index));
  let single_probe =
    Plan.Scan
      {
        table = "items";
        access = Plan.Index_intersect [ { Plan.column = "x"; lo = None; hi = None } ];
        pred = Pred.True;
      }
  in
  check_bool "single-probe intersect rejected" true
    (Result.is_error (Plan.validate catalog single_probe));
  let good = Plan.Scan { table = "items"; access = Plan.Seq_scan; pred = Pred.True } in
  check_bool "good plan accepted" true (Result.is_ok (Plan.validate catalog good));
  check_bool "unknown table rejected" true
    (Result.is_error
       (Plan.validate catalog (Plan.Scan { table = "zz"; access = Plan.Seq_scan; pred = Pred.True })))

let test_plan_describe_and_tables () =
  let scan t = Plan.Scan { table = t; access = Plan.Seq_scan; pred = Pred.True } in
  let plan =
    Plan.Hash_join
      { build = scan "groups"; probe = scan "items"; build_key = "groups.grp_id"; probe_key = "items.grp" }
  in
  Alcotest.(check string) "describe" "Hash(Scan(groups),Scan(items))" (Plan.describe plan);
  Alcotest.(check (list string)) "base tables" [ "groups"; "items" ] (Plan.base_tables plan)

(* Random predicates: every access path must agree with the sequential
   scan. *)
let prop_access_paths_equivalent =
  let catalog = fixture_catalog ~rows:500 () in
  QCheck.Test.make ~name:"all access paths compute the same rows" ~count:60
    QCheck.(quad (int_range 0 99) (int_range 0 99) (int_range 0 109) (int_range 0 109))
    (fun (x1, x2, y1, y2) ->
      let xlo = min x1 x2 and xhi = max x1 x2 in
      let ylo = min y1 y2 and yhi = max y1 y2 in
      let pred =
        Pred.conj
          [
            Pred.between (Expr.col "x") (Expr.int xlo) (Expr.int xhi);
            Pred.between (Expr.col "y") (Expr.int ylo) (Expr.int yhi);
          ]
      in
      let scan access = Plan.Scan { table = "items"; access; pred } in
      let seq, _ = run_plan catalog (scan Plan.Seq_scan) in
      let isect, _ =
        run_plan catalog
          (scan
             (Plan.Index_intersect
                [
                  { Plan.column = "x"; lo = Some (v_int xlo); hi = Some (v_int xhi) };
                  { Plan.column = "y"; lo = Some (v_int ylo); hi = Some (v_int yhi) };
                ]))
      in
      sorted_rows seq = sorted_rows isect)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rq_exec"
    [
      ( "expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arithmetic;
          Alcotest.test_case "null propagation" `Quick test_expr_null_propagation;
          Alcotest.test_case "date arithmetic" `Quick test_expr_date_arithmetic;
          Alcotest.test_case "columns" `Quick test_expr_columns;
          Alcotest.test_case "constant folding" `Quick test_expr_const_value;
          Alcotest.test_case "unknown column" `Quick test_expr_unknown_column;
        ] );
      ( "pred",
        [
          Alcotest.test_case "comparisons" `Quick test_pred_comparisons;
          Alcotest.test_case "null semantics" `Quick test_pred_null_semantics;
          Alcotest.test_case "boolean connectives" `Quick test_pred_boolean_connectives;
          Alcotest.test_case "contains" `Quick test_pred_contains;
          Alcotest.test_case "conjunction flattening" `Quick test_pred_conj_flattening;
          Alcotest.test_case "column renaming" `Quick test_pred_rename;
        ] );
      ( "cost",
        [
          Alcotest.test_case "accumulation and reset" `Quick test_cost_accumulation;
          Alcotest.test_case "scale" `Quick test_cost_scale;
          Alcotest.test_case "sort charge" `Quick test_cost_sort_charge;
        ] );
      ( "executor",
        [
          Alcotest.test_case "access paths agree" `Quick test_access_paths_agree;
          Alcotest.test_case "access path cost asymmetry" `Quick test_access_path_costs;
          Alcotest.test_case "join operators agree" `Quick test_join_operators_agree;
          Alcotest.test_case "hash join with empty side" `Quick test_hash_join_empty_side;
          Alcotest.test_case "merge join sort charging" `Quick test_merge_join_sort_charge;
          Alcotest.test_case "filter and project" `Quick test_filter_project;
          Alcotest.test_case "aggregates on known data" `Quick test_aggregate_known;
          Alcotest.test_case "aggregate over empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "sort and limit" `Quick test_sort_and_limit;
          Alcotest.test_case "sort stability" `Quick test_sort_stability;
          Alcotest.test_case "joins skip NULL keys" `Quick test_joins_skip_null_keys;
          Alcotest.test_case "NULLs sort first" `Quick test_sort_nulls_first;
          Alcotest.test_case "star semijoin = hash cascade" `Quick test_star_semijoin_exec;
        ]
        @ qcheck [ prop_access_paths_equivalent ] );
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validate;
          Alcotest.test_case "describe and base tables" `Quick test_plan_describe_and_tables;
        ] );
    ]
