(* Observability suite: recorder span accounting, trace events, JSON
   round-trips, and the invariants the layer was built to enforce —
   EXPLAIN ANALYZE executes each operator exactly once, per-span self
   deltas reconcile with the meter's totals on every plan family, the
   [FIRES] label agrees with the executor's guard rule on boundary
   q-errors, and the cost meter's seconds are recomputable from its
   counters. *)

open Rq_storage
open Rq_exec
open Rq_obs
open Rq_optimizer

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* customers <- orders <- lineitems chain, with enough indexes that every
   access-path family (range, intersect, INL inner) is executable:
   orders.o_id, lineitems.l_order and lineitems.l_qty are indexed. *)
let chain_catalog () =
  let rng = Rq_math.Rng.create 17 in
  let catalog = Catalog.create () in
  let customers = 20 and orders = 200 and lineitems = 2000 in
  Catalog.add_table catalog ~primary_key:"c_id"
    (Relation.create ~name:"customers"
       ~schema:
         (Schema.create
            [ { Schema.name = "c_id"; ty = Value.T_int }; { Schema.name = "c_tier"; ty = Value.T_int } ])
       (Array.init customers (fun i -> [| v_int i; v_int (i mod 4) |])));
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_cust"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init orders (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng customers); v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "orders"; from_column = "o_cust"; to_table = "customers"; to_column = "c_id" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_order";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_qty";
  catalog

let fresh_stats catalog = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create 41) catalog

let qty_pred = Pred.le (Expr.col "l_qty") (Expr.int 25)
let scan_lineitems access = Plan.Scan { table = "lineitems"; access; pred = qty_pred }
let scan_orders = Plan.Scan { table = "orders"; access = Plan.Seq_scan; pred = Pred.True }

let hash_join =
  Plan.Hash_join
    {
      build = scan_orders;
      probe = scan_lineitems Plan.Seq_scan;
      build_key = "orders.o_id";
      probe_key = "lineitems.l_order";
    }

let inl_join =
  Plan.Indexed_nl_join
    {
      outer = scan_lineitems Plan.Seq_scan;
      outer_key = "lineitems.l_order";
      inner_table = "orders";
      inner_key = "o_id";
      inner_pred = Pred.True;
    }

let two_join_query () =
  Logical.query
    [ Logical.scan ~pred:qty_pred "lineitems"; Logical.scan "orders" ]

let guarded_mat_plan catalog =
  Plan.Sort
    {
      input =
        Plan.Guard
          {
            input =
              Plan.Hash_join
                {
                  build =
                    Plan.Materialized
                      {
                        name = "mat";
                        schema =
                          Schema.qualify "orders"
                            (Relation.schema (Catalog.find_table catalog "orders"));
                        tuples =
                          Array.init 50 (fun i -> [| v_int i; v_int (i mod 20); v_int 0 |]);
                        refs = [];
                      };
                  probe = scan_lineitems Plan.Seq_scan;
                  build_key = "orders.o_id";
                  probe_key = "lineitems.l_order";
                };
            expected_rows = 200.0;
            max_q_error = 1e9;
            label = "mat-join";
          };
      keys = [ { Plan.sort_column = "lineitems.l_id"; descending = false } ];
    }

(* Every plan family the executor knows: scans over all three access
   paths, all three join algorithms, the star semijoin, and a
   guard-over-materialized sandwich under a sort. *)
let plan_families catalog =
  let star =
    Rq_workload.Star.generate (Rq_math.Rng.create 23)
      ~params:{ Rq_workload.Star.default_params with fact_rows = 5000; dim_rows = 100 } ()
  in
  let dim i =
    {
      Plan.dim_table = Printf.sprintf "dim%d" i;
      dim_pred = Pred.eq (Expr.col "d_filter") (Expr.int 0);
      fact_fk = Printf.sprintf "f_dim%d" i;
    }
  in
  [
    ("seq-scan", catalog, scan_lineitems Plan.Seq_scan);
    ( "index-range",
      catalog,
      scan_lineitems
        (Plan.Index_range { column = "l_qty"; lo = None; hi = Some (v_int 25) }) );
    ( "index-intersect",
      catalog,
      scan_lineitems
        (Plan.Index_intersect
           [
             { column = "l_qty"; lo = None; hi = Some (v_int 25) };
             { column = "l_order"; lo = Some (v_int 0); hi = Some (v_int 100) };
           ]) );
    ("hash-join", catalog, hash_join);
    ( "merge-join",
      catalog,
      Plan.Merge_join
        {
          left = scan_lineitems Plan.Seq_scan;
          right = scan_orders;
          left_key = "lineitems.l_order";
          right_key = "orders.o_id";
        } );
    ("indexed-nl-join", catalog, inl_join);
    ( "star-semijoin",
      star,
      Plan.Star_semijoin { fact = "fact"; fact_pred = Pred.True; dims = [ dim 1; dim 2; dim 3 ] }
    );
    ("guard+materialized+sort", catalog, guarded_mat_plan catalog);
  ]

(* ------------------------------------------------------------------ *)
(* Span accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* The load-bearing invariant: for every plan family, the per-span self
   deltas sum back to the meter's snapshot, counter for counter and to
   1e-9 in simulated seconds. *)
let test_span_reconciliation () =
  let catalog = chain_catalog () in
  List.iter
    (fun (name, cat, plan) ->
      (match Plan.validate cat plan with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": fixture plan invalid: " ^ msg));
      let recorder = Recorder.create () in
      let meter = Cost.create ~scale:2.5 () in
      let result = Executor.run ~obs:recorder cat meter plan in
      let roots = Recorder.roots recorder in
      check_int (name ^ ": one root span") 1 (List.length roots);
      let root = List.hd roots in
      check_int (name ^ ": root rows = result rows")
        (Array.length result.Executor.tuples)
        root.Recorder.rows;
      let metered = Cost.to_metrics (Cost.snapshot meter) in
      check_bool (name ^ ": self deltas sum to the meter") true
        (Metrics.approx_equal ~tolerance:1e-9 (Recorder.sum_self roots) metered);
      check_bool (name ^ ": root total = meter") true
        (Metrics.approx_equal ~tolerance:1e-9 root.Recorder.total metered);
      check_bool (name ^ ": work was metered") true (metered.Metrics.seconds > 0.0))
    (plan_families catalog)

(* Children appear in execution order (build before probe) and self
   deltas never go negative. *)
let test_span_structure () =
  let catalog = chain_catalog () in
  let recorder = Recorder.create () in
  let meter = Cost.create () in
  ignore (Executor.run ~obs:recorder catalog meter hash_join);
  match Recorder.roots recorder with
  | [ root ] ->
      check_int "two children" 2 (List.length root.Recorder.children);
      check_bool "build span first" true
        ((List.nth root.Recorder.children 0).Recorder.label = "SeqScan(orders)");
      check_bool "probe span second" true
        ((List.nth root.Recorder.children 1).Recorder.label = "SeqScan(lineitems)");
      List.iter
        (fun (s : Recorder.span) ->
          check_bool (s.Recorder.label ^ ": self seconds >= 0") true
            (s.Recorder.self.Metrics.seconds >= 0.0))
        (Recorder.flatten root)
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE executes once                                       *)
(* ------------------------------------------------------------------ *)

(* Regression for the quadratic re-execution bug: a 3-node plan over one
   table used to run the scan once per node (plus once more for the
   render total).  A single instrumented pass charges the table's pages
   exactly once. *)
let test_explain_analyze_single_execution () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let plan =
    Plan.Aggregate
      {
        input = Plan.Filter (scan_lineitems Plan.Seq_scan, Pred.True);
        group_by = [];
        aggs = [ { Plan.fn = Plan.Count_star; output_name = "n" } ];
      }
  in
  let report = Explain_analyze.analyze catalog (Cardinality.oracle catalog) plan in
  check_int "three nodes" 3 (List.length report.Explain_analyze.nodes);
  check_int "table scanned exactly once"
    (Relation.page_count lineitems)
    report.Explain_analyze.snapshot.Cost.seq_pages;
  (* The rendered report is fed by the same single execution. *)
  let rendered = Explain_analyze.render_report report in
  check_bool "render mentions the scan" true
    (string_contains rendered "SeqScan(lineitems)");
  check_bool "render reports time" true
    (string_contains rendered "total simulated execution");
  check_float "render total = single pass total"
    report.Explain_analyze.snapshot.Cost.seconds
    (Recorder.sum_self report.Explain_analyze.spans).Metrics.seconds

(* Guards are transparent to the single execution: a guarded plan still
   charges its table's pages exactly once, and the guard row reuses its
   input's actuals. *)
let test_explain_analyze_guard_transparent () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let actual =
    Relation.filter_count lineitems (Pred.compile (Relation.schema lineitems) qty_pred)
  in
  let plan =
    Plan.Guard
      {
        input = scan_lineitems Plan.Seq_scan;
        expected_rows = float_of_int actual;
        max_q_error = 4.0;
        label = "scan";
      }
  in
  let report = Explain_analyze.analyze catalog (Cardinality.oracle catalog) plan in
  check_int "table scanned exactly once"
    (Relation.page_count lineitems)
    report.Explain_analyze.snapshot.Cost.seq_pages;
  match report.Explain_analyze.nodes with
  | [ guard; scan ] ->
      check_bool "guard row labeled pass" true (string_contains guard.Explain_analyze.label "[pass]");
      check_int "guard actuals = scan actuals" scan.Explain_analyze.actual_rows
        guard.Explain_analyze.actual_rows;
      check_int "scan actuals are real" actual scan.Explain_analyze.actual_rows
  | nodes -> Alcotest.fail (Printf.sprintf "expected 2 nodes, got %d" (List.length nodes))

(* ------------------------------------------------------------------ *)
(* One q-error definition                                              *)
(* ------------------------------------------------------------------ *)

(* The [FIRES] label and the executor's Guard_violation must agree at the
   firing boundary: a guard fires strictly when q > max_q_error, so a
   q-error of exactly the threshold passes in both views. *)
let test_guard_boundary_agreement () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let actual =
    Relation.filter_count lineitems (Pred.compile (Relation.schema lineitems) qty_pred)
  in
  let expected = 2.0 *. float_of_int actual in
  check_float "q-error at the boundary" 2.0 (Plan.q_error ~expected ~actual);
  check_float "Executor.q_error is the same definition"
    (Plan.q_error ~expected ~actual)
    (Executor.q_error ~expected ~actual);
  let guarded max_q_error =
    Plan.Guard
      { input = scan_lineitems Plan.Seq_scan; expected_rows = expected; max_q_error; label = "b" }
  in
  let fires plan =
    match Executor.run catalog (Cost.create ()) plan with
    | _ -> false
    | exception Executor.Guard_violation { q_error; _ } ->
        check_float "violation carries the q-error" 2.0 q_error;
        true
  in
  let label_fires plan =
    let nodes = Explain_analyze.collect catalog (Cardinality.oracle catalog) plan in
    string_contains (List.hd nodes).Explain_analyze.label "[FIRES]"
  in
  (* q = threshold exactly: passes in both views. *)
  check_bool "executor passes at q = threshold" false (fires (guarded 2.0));
  check_bool "label passes at q = threshold" false (label_fires (guarded 2.0));
  (* threshold just below q: fires in both views. *)
  check_bool "executor fires just past threshold" true (fires (guarded 1.999));
  check_bool "label fires just past threshold" true (label_fires (guarded 1.999))

(* ------------------------------------------------------------------ *)
(* Cost counters                                                       *)
(* ------------------------------------------------------------------ *)

(* Every charge kind has a counter, so the meter's simulated seconds can
   be recomputed from a snapshot — including index entries (which used to
   charge seconds without a counter), log-weighted sort units and raw
   second charges — at a non-trivial scale. *)
let test_seconds_recomputable () =
  let catalog = chain_catalog () in
  let run plan =
    let meter = Cost.create ~scale:3.0 () in
    ignore (Executor.run catalog meter plan);
    (* A raw seconds charge exercises the extra_seconds bucket. *)
    Cost.charge_seconds meter 0.125;
    meter
  in
  List.iter
    (fun (name, plan) ->
      let meter = run plan in
      let snap = Cost.snapshot meter in
      check_bool (name ^ ": seconds recomputed from counters") true
        (Float.abs
           (Cost.seconds_of_counters ~constants:(Cost.constants meter)
              ~scale:(Cost.scale meter) snap
           -. snap.Cost.seconds)
        < 1e-9))
    [
      ("hash-join", hash_join);
      ( "index-range",
        scan_lineitems (Plan.Index_range { column = "l_qty"; lo = None; hi = Some (v_int 25) })
      );
      ("guard+materialized+sort", guarded_mat_plan catalog);
    ];
  (* index entries are now visible as a counter, not just as seconds. *)
  let meter = Cost.create () in
  ignore
    (Executor.run catalog meter
       (scan_lineitems (Plan.Index_range { column = "l_qty"; lo = None; hi = Some (v_int 25) })));
  let snap = Cost.snapshot meter in
  check_bool "index entries counted" true (snap.Cost.index_entries > 0);
  check_bool "index probes counted" true (snap.Cost.index_probes > 0)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip_values () =
  let tricky =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te \x01 unicode");
        ("neg", Json.Num (-0.5));
        ("big", Json.Num 1.234e18);
        ("int", Json.Num 42.0);
        ("precise", Json.Num 0.1);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str ""; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string tricky) with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok parsed -> check_bool "tricky value round-trips" true (Json.equal tricky parsed)

let test_json_roundtrip_recorder () =
  let catalog = chain_catalog () in
  let recorder = Recorder.create () in
  let meter = Cost.create ~scale:2.5 () in
  ignore (Executor.run ~obs:recorder catalog meter (guarded_mat_plan catalog));
  check_bool "guard pass recorded" true
    (List.exists
       (function Trace.Guard_ok _ -> true | _ -> false)
       (Recorder.events recorder));
  let json = Recorder.to_json recorder in
  match Json.parse (Json.to_string json) with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok parsed ->
      check_bool "recorder JSON round-trips" true (Json.equal json parsed);
      (* The JSON carries the same reconciliation the spans do. *)
      check_bool "spans key present" true
        (match parsed with
        | Json.Obj kvs -> List.mem_assoc "spans" kvs && List.mem_assoc "events" kvs
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Re-optimization attribution                                         *)
(* ------------------------------------------------------------------ *)

(* A fired guard leaves: a Guard_fired event from the executor, the
   reopt loop's Reopt_planned/Reopt_adopted narration, an aborted
   attempt-root span whose cost delta is the wasted prefix, and a
   completed root for the rescue. *)
let test_reopt_events_and_spans () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let opt = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in
  let recorder = Recorder.create () in
  let outcome =
    Reopt.execute_plan ~threshold:4.0 ~obs:recorder opt (two_join_query ()) inl_join
  in
  check_bool "a guard fired" true (outcome.Reopt.events <> []);
  let events = Recorder.events recorder in
  let has p = List.exists p events in
  check_bool "Guard_fired traced" true
    (has (function Trace.Guard_fired _ -> true | _ -> false));
  check_bool "Reopt_planned traced" true
    (has (function Trace.Reopt_planned _ -> true | _ -> false));
  check_bool "Reopt_adopted traced" true
    (has (function Trace.Reopt_adopted _ -> true | _ -> false));
  let roots = Recorder.roots recorder in
  check_bool "at least two attempts" true (List.length roots >= 2);
  let aborted = List.filter (fun (s : Recorder.span) -> s.Recorder.aborted) roots in
  check_bool "an aborted attempt root" true (aborted <> []);
  check_bool "attempt roots labeled" true
    (List.for_all (fun (s : Recorder.span) -> string_contains s.Recorder.label "attempt") roots);
  List.iter
    (fun (s : Recorder.span) ->
      check_bool "aborted attempt cost attributed" true (s.Recorder.total.Metrics.seconds > 0.0))
    aborted;
  (* Span deltas over ALL attempts still reconcile with the outcome's
     single shared meter. *)
  check_bool "attempt self deltas sum to the shared meter" true
    (Metrics.approx_equal ~tolerance:1e-9 (Recorder.sum_self roots)
       (Cost.to_metrics outcome.Reopt.snapshot));
  check_bool "events render" true
    (string_contains (Recorder.render_events events) "guard");
  check_bool "spans render" true
    (string_contains (Recorder.render_spans roots) "attempt1")

(* The reopt experiment's wasted-prefix column: present, positive when a
   guard fired and replanning happened, and bounded by the guarded total. *)
let test_exp_reopt_wasted_column () =
  let config =
    {
      Rq_experiments.Exp_reopt.default_config with
      customers = 20;
      orders = 100;
      lineitems = 800;
      cutoffs = [ 25 ];
    }
  in
  let result = Rq_experiments.Exp_reopt.run ~config () in
  let row = List.hd result.Rq_experiments.Exp_reopt.rows in
  check_bool "guard fired in fixture" true row.Rq_experiments.Exp_reopt.fired;
  check_bool "wasted > 0 on a fired run" true (row.Rq_experiments.Exp_reopt.wasted_s > 0.0);
  check_bool "wasted < guarded total" true
    (row.Rq_experiments.Exp_reopt.wasted_s < row.Rq_experiments.Exp_reopt.guarded_s);
  check_bool "render has the column" true
    (string_contains (Rq_experiments.Exp_reopt.render result) "wasted")

(* ------------------------------------------------------------------ *)
(* Degradation chain                                                   *)
(* ------------------------------------------------------------------ *)

(* On healthy statistics the degrading chain must answer exactly like the
   robust estimator (they now share one evidence/quantile memo). *)
let test_degrading_robust_parity () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let est =
    Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent 80.0) ()
  in
  let robust = Cardinality.robust stats est in
  let degrading = Cardinality.degrading stats est in
  let refs = (two_join_query ()).Logical.tables in
  check_float "expression cardinality parity"
    (robust.Cardinality.expression_cardinality refs)
    (degrading.Cardinality.expression_cardinality refs);
  check_float "table selectivity parity"
    (robust.Cardinality.table_selectivity ~table:"lineitems" qty_pred)
    (degrading.Cardinality.table_selectivity ~table:"lineitems" qty_pred);
  check_float "group count parity"
    (robust.Cardinality.group_count refs [ "orders.o_status" ])
    (degrading.Cardinality.group_count refs [ "orders.o_status" ])

(* Tier transitions surface as Degraded trace events when a recorder is
   attached (same dedup as the log callback). *)
let test_degraded_trace_event () =
  let catalog = chain_catalog () in
  let stats = fresh_stats catalog in
  let rng = Rq_math.Rng.create 99 in
  let injections =
    match Rq_stats.Fault.profile_injections rng stats "missing" with
    | Ok inj -> inj
    | Error msg -> Alcotest.fail msg
  in
  let damaged = Rq_stats.Fault.apply rng stats injections in
  let recorder = Recorder.create () in
  let est =
    Rq_core.Robust_estimator.create ~confidence:(Rq_core.Confidence.of_percent 80.0) ()
  in
  let chain = Cardinality.degrading ~obs:recorder damaged est in
  ignore (chain.Cardinality.expression_cardinality (two_join_query ()).Logical.tables);
  check_bool "Degraded event recorded" true
    (List.exists
       (function
         | Trace.Degraded { kind; _ } -> kind = "missing"
         | _ -> false)
       (Recorder.events recorder))

(* Statistics refreshes narrate themselves. *)
let test_stats_refresh_event () =
  let catalog = chain_catalog () in
  let recorder = Recorder.create () in
  let m = Rq_stats.Maintenance.create ~obs:recorder (Rq_math.Rng.create 5) catalog in
  Rq_stats.Maintenance.record_modifications m ~table:"lineitems" 2000;
  check_bool "stale after bulk modification" true (Rq_stats.Maintenance.is_stale m);
  check_bool "maybe_refresh rebuilt" true (Rq_stats.Maintenance.maybe_refresh m);
  match Recorder.events recorder with
  | [ Trace.Stats_refresh { tables } ] ->
      check_bool "names the dirty table" true (tables = [ "lineitems" ])
  | events -> Alcotest.fail (Printf.sprintf "expected 1 refresh event, got %d" (List.length events))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "self deltas reconcile across plan families" `Quick
            test_span_reconciliation;
          Alcotest.test_case "execution-ordered children, non-negative self" `Quick
            test_span_structure;
        ] );
      ( "explain-analyze",
        [
          Alcotest.test_case "executes each operator exactly once" `Quick
            test_explain_analyze_single_execution;
          Alcotest.test_case "guards are transparent to the single pass" `Quick
            test_explain_analyze_guard_transparent;
          Alcotest.test_case "FIRES label agrees with the executor at the boundary" `Quick
            test_guard_boundary_agreement;
        ] );
      ( "cost",
        [
          Alcotest.test_case "seconds recomputable from counters" `Quick
            test_seconds_recomputable;
        ] );
      ( "json",
        [
          Alcotest.test_case "tricky values round-trip" `Quick test_json_roundtrip_values;
          Alcotest.test_case "recorder output round-trips" `Quick test_json_roundtrip_recorder;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "events and attempt spans" `Quick test_reopt_events_and_spans;
          Alcotest.test_case "wasted-prefix column" `Quick test_exp_reopt_wasted_column;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "healthy-stats parity with robust" `Quick
            test_degrading_robust_parity;
          Alcotest.test_case "Degraded trace event" `Quick test_degraded_trace_event;
          Alcotest.test_case "Stats_refresh trace event" `Quick test_stats_refresh_event;
        ] );
    ]
