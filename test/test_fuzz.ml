(* The fuzzer's own harness: genome serialization round-trips, mutation
   invariants, data-state mutation integrity, a clean probe through every
   differential pass, and the planted-divergence self-test end to end
   (catch -> shrink -> replayable repro). *)

open Rq_storage
open Rq_workload
module F = Rq_experiments.Exp_fuzz
module Json = Rq_obs.Json
module Rng = Rq_math.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tiny_config =
  {
    F.default_config with
    F.iterations = 10;
    seed = 11;
    baseline = false;
    seed_corpus = 4;
    repro_file = Filename.concat (Filename.get_temp_dir_name ()) "test-fuzz.fuzz-repro";
  }

(* ------------------------------------------------------------------ *)
(* Genome serialization                                                *)
(* ------------------------------------------------------------------ *)

let roundtrip case =
  let json = F.case_to_json case in
  let text = Json.to_string json in
  match Json.parse text with
  | Error e -> Alcotest.failf "serialized case does not parse: %s\n%s" e text
  | Ok reparsed -> (
      match F.case_of_json reparsed with
      | Error e -> Alcotest.failf "case does not decode: %s\n%s" e text
      | Ok case' ->
          check_bool
            (Printf.sprintf "round-trip preserves the case\n%s" text)
            true
            (Json.equal json (F.case_to_json case')))

let test_json_roundtrip_generated () =
  let rng = Rng.create 91 in
  for _ = 1 to 50 do
    roundtrip (F.gen_case rng F.default_config)
  done

(* A handcrafted case exercising every fault constructor, both mutation
   constructors and a multi-table grouped query in one genome. *)
let test_json_roundtrip_dense () =
  let open Rq_stats in
  roundtrip
    {
      F.workload = F.Tpch;
      catalog_seed = 1;
      mutations =
        [
          Mutate.Grow { table = "lineitem"; percent = 40 };
          Mutate.Shrink { table = "lineitem"; keep_percent = 25 };
        ];
      faults =
        [
          Fault.Drop_synopsis "lineitem";
          Fault.Truncate_synopsis { root = "lineitem"; keep = 5 };
          Fault.Corrupt_synopsis "lineitem";
          Fault.Skew_synopsis { root = "lineitem"; factor = 16.0 };
          Fault.Drop_histogram { table = "part"; column = "p_size" };
          Fault.Dangling_fk { root = "lineitem"; break = 25 };
        ];
      query =
        {
          F.genes =
            [
              {
                F.table = "lineitem";
                atoms =
                  [
                    { F.column = "l_quantity"; cmp = F.C_le; value = F.L_int 30 };
                    { F.column = "l_shipdate"; cmp = F.C_gt; value = F.L_date 9000 };
                    { F.column = "l_extendedprice"; cmp = F.C_lt; value = F.L_float 5e4 };
                  ];
              };
              {
                F.table = "part";
                atoms = [ { F.column = "p_bucket"; cmp = F.C_eq; value = F.L_int 7 } ];
              };
            ];
          shape = F.Grouped;
          semis = [ { F.table = "orders"; atoms = [] } ];
          order = true;
          descending = true;
          limit = Some 7;
        };
      pool_pages = Some 256;
      vectorize = false;
    }

(* A corpus entry written before the data-plane gene existed has no
   "vectorize" field: it must parse as [true] (the engine default the old
   build actually ran). *)
let test_json_pre_gene_defaults_vectorized () =
  let old_json =
    Json.Obj
      [
        ("workload", Json.Str "tpch");
        ("catalog_seed", Json.Num 1.0);
        ("mutations", Json.List []);
        ("faults", Json.List []);
        ( "query",
          Json.Obj
            [
              ("shape", Json.Str "total");
              ( "tables",
                Json.List
                  [
                    Json.Obj
                      [ ("table", Json.Str "lineitem"); ("atoms", Json.List []) ];
                  ] );
            ] );
      ]
  in
  match F.case_of_json old_json with
  | Error e -> Alcotest.failf "pre-gene corpus entry rejected: %s" e
  | Ok case -> Alcotest.(check bool) "defaults to the vectorized plane" true case.F.vectorize

let test_json_rejects_garbage () =
  List.iter
    (fun (label, json) ->
      match F.case_of_json json with
      | Error _ -> ()
      | Ok case -> Alcotest.failf "%s decoded as %s" label (F.case_summary case))
    [
      ("null", Json.Null);
      ("empty object", Json.Obj []);
      ("bad workload", Json.Obj [ ("workload", Json.Str "oltp") ]);
      ( "bad fault kind",
        Json.Obj
          [
            ("workload", Json.Str "star");
            ("catalog_seed", Json.Num 0.0);
            ("mutations", Json.List []);
            ("faults", Json.List [ Json.Obj [ ("kind", Json.Str "set-on-fire") ] ]);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Mutation invariants                                                 *)
(* ------------------------------------------------------------------ *)

(* Whatever the level and however long the chain, a mutated case keeps
   its genome well-formed: the root table survives at the head, joined
   tables stay distinct, atom/fault/mutation counts stay capped, and the
   query still compiles. *)
let test_mutate_case_invariants () =
  let rng = Rng.create 17 in
  for trial = 1 to 60 do
    let case = ref (F.gen_case rng F.default_config) in
    let root =
      match !case.F.query.F.genes with
      | g :: _ -> g.F.table
      | [] -> Alcotest.fail "generated query has no tables"
    in
    for step = 1 to 12 do
      let level = Rng.int rng 3 in
      case := F.mutate_case rng ~level F.default_config !case;
      let q = !case.F.query in
      let ctx = Printf.sprintf "trial %d step %d: %s" trial step (F.case_summary !case) in
      (match q.F.genes with
      | g :: _ -> check_string (ctx ^ ": root preserved") root g.F.table
      | [] -> Alcotest.failf "%s: no tables left" ctx);
      let tables = List.map (fun g -> g.F.table) q.F.genes in
      check_int
        (ctx ^ ": joined tables distinct")
        (List.length tables)
        (List.length (List.sort_uniq compare tables));
      List.iter
        (fun g ->
          check_bool (ctx ^ ": atom cap") true (List.length g.F.atoms <= 3))
        q.F.genes;
      check_bool (ctx ^ ": fault cap") true (List.length !case.F.faults <= 3);
      check_bool (ctx ^ ": mutation cap") true (List.length !case.F.mutations <= 3);
      ignore (F.compile_case !case)
    done
  done

(* ------------------------------------------------------------------ *)
(* Data-state mutations                                                *)
(* ------------------------------------------------------------------ *)

let star_catalog () =
  Star.generate (Rng.create 5) ~params:{ Star.default_params with fact_rows = 500 } ()

let test_mutate_grow () =
  let catalog = star_catalog () in
  let before = Relation.row_count (Catalog.find_table catalog "fact") in
  check_bool "fact growable" true (List.mem "fact" (Mutate.growable catalog));
  (match Mutate.apply (Rng.create 3) catalog (Mutate.Grow { table = "fact"; percent = 40 }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grow failed: %s" e);
  let rel = Catalog.find_table catalog "fact" in
  check_int "grew by 40%" (before + (before * 40 / 100)) (Relation.row_count rel);
  (* fresh primary keys: still unique across old and appended rows *)
  let pk = match Catalog.primary_key catalog "fact" with Some c -> c | None -> "f_id" in
  let keys = Hashtbl.create 1024 in
  Relation.iter
    (fun _ row ->
      let k = row.(Rq_storage.Schema.index_of (Relation.schema rel) pk) in
      if Hashtbl.mem keys k then
        Alcotest.failf "duplicate primary key %s" (Rq_storage.Value.to_string k);
      Hashtbl.add keys k ())
    rel

let test_mutate_shrink () =
  let catalog = star_catalog () in
  let before = Relation.row_count (Catalog.find_table catalog "fact") in
  (match
     Mutate.apply (Rng.create 3) catalog (Mutate.Shrink { table = "fact"; keep_percent = 25 })
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shrink failed: %s" e);
  check_int "kept 25%" (before * 25 / 100)
    (Relation.row_count (Catalog.find_table catalog "fact"));
  (* dimensions have incoming FK edges: shrinking them must be refused *)
  check_bool "dim1 not shrinkable" false (List.mem "dim1" (Mutate.shrinkable catalog));
  let dim_rows = Relation.row_count (Catalog.find_table catalog "dim1") in
  match Mutate.apply (Rng.create 3) catalog (Mutate.Shrink { table = "dim1"; keep_percent = 50 }) with
  | Ok () -> Alcotest.fail "shrinking an FK-referenced table must be refused"
  | Error _ ->
      check_int "refusal left the table alone" dim_rows
        (Relation.row_count (Catalog.find_table catalog "dim1"))

let test_mutation_roundtrip () =
  List.iter
    (fun m ->
      match Mutate.of_string (Mutate.to_string m) with
      | Ok m' -> check_string "mutation round-trip" (Mutate.to_string m) (Mutate.to_string m')
      | Error e -> Alcotest.failf "%s did not parse back: %s" (Mutate.to_string m) e)
    [
      Mutate.Grow { table = "fact"; percent = 120 };
      Mutate.Shrink { table = "lineitem"; keep_percent = 0 };
    ]

(* ------------------------------------------------------------------ *)
(* Probing and the planted-divergence self-test                        *)
(* ------------------------------------------------------------------ *)

let test_probe_clean () =
  let rng = Rng.create 23 in
  let rec first_valid tries =
    if tries = 0 then Alcotest.fail "no generated case survived the oracle"
    else
      let case = F.gen_case rng tiny_config in
      match F.probe_case tiny_config case with
      | Ok probe -> (case, probe)
      | Error _ -> first_valid (tries - 1)
  in
  let case, probe = first_valid 10 in
  (match probe.F.divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf "healthy engines diverged on %s: %s (%s)" d.F.pass d.F.detail
        (F.case_summary case));
  let plans, tiers = probe.F.coverage in
  check_bool "plan fingerprint non-empty" true (String.length plans > 0);
  (* the degraded pass always contributes at least one guard token *)
  check_bool "tier digest non-empty" true (String.length tiers > 0)

let test_self_test_plants_divergence () =
  let rng = Rng.create 29 in
  let rec hunt tries =
    if tries = 0 then Alcotest.fail "perturbed estimator never changed a plan in 40 cases"
    else
      let case = F.gen_case rng tiny_config in
      match F.probe_case ~self_test:true tiny_config case with
      | Error _ -> hunt (tries - 1)
      | Ok { F.divergence = Some d; _ } ->
          check_bool
            (Printf.sprintf "planted fault lands in the kernel pass, got %s" d.F.pass)
            true
            (String.length d.F.pass >= 6 && String.sub d.F.pass 0 6 = "kernel")
      | Ok { F.divergence = None; _ } -> hunt (tries - 1)
  in
  hunt 40

(* End to end: the self-test run must catch the planted perturbation,
   shrink it to at most three tables, and leave a repro file that both
   replays red and survives a config round-trip through [F.replay]. *)
let test_self_test_run_and_replay () =
  let config = { tiny_config with F.self_test = true; iterations = 40; seed = 5 } in
  let result = F.run ~config () in
  check_bool "self-test run passes" true result.F.r_ok;
  match result.F.r_found with
  | None -> Alcotest.fail "self-test run reported no divergence"
  | Some found ->
      check_bool "shrunk to <= 3 tables" true (found.F.f_tables <= 3);
      check_bool "repro file replays red" true found.F.f_reproduced;
      (match F.replay config found.F.f_repro_path with
      | Error e -> Alcotest.failf "replay failed: %s" e
      | Ok (case, probe, recorded_pass) ->
          check_bool "replayed case still diverges" true (probe.F.divergence <> None);
          check_string "replay reports the recorded pass" found.F.f_divergence.F.pass
            recorded_pass;
          check_bool "shrunk case is small" true (List.length case.F.query.F.genes <= 3));
      Sys.remove found.F.f_repro_path

(* Same end-to-end contract for the planted unsound rewrite: the rewrite
   pass must catch it, the shrink must keep the catch in that pass, and
   the repro file must replay red with the flag restored from disk. *)
let test_self_test_rewrite_run_and_replay () =
  let config =
    { tiny_config with
      F.self_test_rewrite = true;
      iterations = 40;
      seed = 7;
      repro_file =
        Filename.concat (Filename.get_temp_dir_name ()) "test-fuzz-rewrite.fuzz-repro";
    }
  in
  let result = F.run ~config () in
  check_bool "rewrite self-test run passes" true result.F.r_ok;
  match result.F.r_found with
  | None -> Alcotest.fail "rewrite self-test run reported no divergence"
  | Some found ->
      check_bool
        (Printf.sprintf "caught by the rewrite pass, got %s" found.F.f_divergence.F.pass)
        true
        (String.length found.F.f_divergence.F.pass >= 7
        && String.sub found.F.f_divergence.F.pass 0 7 = "rewrite");
      check_bool "repro file replays red" true found.F.f_reproduced;
      (match F.replay config found.F.f_repro_path with
      | Error e -> Alcotest.failf "replay failed: %s" e
      | Ok (_, probe, recorded_pass) ->
          check_bool "replayed case still diverges" true (probe.F.divergence <> None);
          check_string "replay reports the recorded pass" found.F.f_divergence.F.pass
            recorded_pass);
      Sys.remove found.F.f_repro_path

let () =
  Alcotest.run "fuzz"
    [
      ( "genome serialization",
        [
          Alcotest.test_case "generated cases round-trip" `Quick test_json_roundtrip_generated;
          Alcotest.test_case "dense handcrafted case round-trips" `Quick
            test_json_roundtrip_dense;
          Alcotest.test_case "pre-gene corpora default to the vectorized plane" `Quick
            test_json_pre_gene_defaults_vectorized;
          Alcotest.test_case "garbage rejected" `Quick test_json_rejects_garbage;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "mutate_case invariants" `Quick test_mutate_case_invariants;
          Alcotest.test_case "grow appends fresh keys" `Quick test_mutate_grow;
          Alcotest.test_case "shrink keeps subset, refuses FK targets" `Quick
            test_mutate_shrink;
          Alcotest.test_case "mutation strings round-trip" `Quick test_mutation_roundtrip;
        ] );
      ( "probing",
        [
          Alcotest.test_case "clean case passes every pass" `Quick test_probe_clean;
          Alcotest.test_case "self-test perturbation is visible" `Quick
            test_self_test_plants_divergence;
          Alcotest.test_case "self-test run shrinks and replays" `Quick
            test_self_test_run_and_replay;
          Alcotest.test_case "rewrite self-test run shrinks and replays" `Quick
            test_self_test_rewrite_run_and_replay;
        ] );
    ]
