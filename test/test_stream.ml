(* Streaming executor suite: the pull-based engine must be observably
   indistinguishable from the materialized engine on full drains —
   byte-identical tuples AND every cost counter identical — while
   early-exit shapes (LIMIT, mid-stream guard firing) charge strictly
   less I/O.  Also pins the recovery primitives the reopt loop builds
   on: [Scan_resume] page geometry, [Append] prefix replay, the
   partial-result payload of a mid-stream [Guard_violation], and
   duplicate-key hash-join ordering. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* Same customers <- orders <- lineitems chain as the obs suite; big
   enough (2000 lineitems) that a seq scan spans multiple stream batches
   and many pages. *)
let chain_catalog () =
  let rng = Rq_math.Rng.create 17 in
  let catalog = Catalog.create () in
  let customers = 20 and orders = 200 and lineitems = 2000 in
  Catalog.add_table catalog ~primary_key:"c_id"
    (Relation.create ~name:"customers"
       ~schema:
         (Schema.create
            [ { Schema.name = "c_id"; ty = Value.T_int }; { Schema.name = "c_tier"; ty = Value.T_int } ])
       (Array.init customers (fun i -> [| v_int i; v_int (i mod 4) |])));
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_cust"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init orders (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng customers); v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "orders"; from_column = "o_cust"; to_table = "customers"; to_column = "c_id" };
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_order";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_qty";
  catalog

let qty_pred = Pred.le (Expr.col "l_qty") (Expr.int 25)
let scan_lineitems access = Plan.Scan { table = "lineitems"; access; pred = qty_pred }

let scan_all table = Plan.Scan { table; access = Plan.Seq_scan; pred = Pred.True }

let run_mode mode catalog plan =
  let meter = Cost.create ~scale:2.0 () in
  let res = Executor.run ~mode catalog meter plan in
  (res, Cost.snapshot meter)

let check_snapshots name (s : Cost.snapshot) (m : Cost.snapshot) =
  let ci field = check_int (Printf.sprintf "%s: %s" name field) in
  ci "seq_pages" m.Cost.seq_pages s.Cost.seq_pages;
  ci "random_pages" m.Cost.random_pages s.Cost.random_pages;
  ci "cpu_tuples" m.Cost.cpu_tuples s.Cost.cpu_tuples;
  ci "index_probes" m.Cost.index_probes s.Cost.index_probes;
  ci "index_entries" m.Cost.index_entries s.Cost.index_entries;
  ci "hash_build" m.Cost.hash_build s.Cost.hash_build;
  ci "hash_probe" m.Cost.hash_probe s.Cost.hash_probe;
  ci "merge_tuples" m.Cost.merge_tuples s.Cost.merge_tuples;
  ci "sort_tuples" m.Cost.sort_tuples s.Cost.sort_tuples;
  ci "output_tuples" m.Cost.output_tuples s.Cost.output_tuples;
  check_float (name ^ ": sort_units") m.Cost.sort_units s.Cost.sort_units;
  check_float (name ^ ": extra_seconds") m.Cost.extra_seconds s.Cost.extra_seconds;
  check_float (name ^ ": seconds") m.Cost.seconds s.Cost.seconds

let check_results name (s : Executor.result) (m : Executor.result) =
  check_bool (name ^ ": schemas identical") true (s.Executor.schema = m.Executor.schema);
  check_int (name ^ ": row counts") (Array.length m.Executor.tuples)
    (Array.length s.Executor.tuples);
  check_bool (name ^ ": tuples byte-identical") true
    (s.Executor.tuples = m.Executor.tuples)

(* ------------------------------------------------------------------ *)
(* Full-drain parity across every plan family                          *)
(* ------------------------------------------------------------------ *)

(* Without LIMIT or a firing guard the two engines must be a bisimulation:
   same tuples in the same order, same value on every meter counter. *)
let test_family_parity () =
  let catalog = chain_catalog () in
  let star =
    Rq_workload.Star.generate (Rq_math.Rng.create 23)
      ~params:{ Rq_workload.Star.default_params with fact_rows = 5000; dim_rows = 100 } ()
  in
  let dim i =
    {
      Plan.dim_table = Printf.sprintf "dim%d" i;
      dim_pred = Pred.eq (Expr.col "d_filter") (Expr.int 0);
      fact_fk = Printf.sprintf "f_dim%d" i;
    }
  in
  let hash_join =
    Plan.Hash_join
      {
        build = scan_all "orders";
        probe = scan_lineitems Plan.Seq_scan;
        build_key = "orders.o_id";
        probe_key = "lineitems.l_order";
      }
  in
  let families =
    [
      ("seq-scan", catalog, scan_lineitems Plan.Seq_scan);
      ( "index-range",
        catalog,
        scan_lineitems (Plan.Index_range { column = "l_qty"; lo = None; hi = Some (v_int 25) })
      );
      ( "index-intersect",
        catalog,
        scan_lineitems
          (Plan.Index_intersect
             [
               { column = "l_qty"; lo = None; hi = Some (v_int 25) };
               { column = "l_order"; lo = Some (v_int 0); hi = Some (v_int 100) };
             ]) );
      ("hash-join", catalog, hash_join);
      ( "merge-join",
        catalog,
        Plan.Merge_join
          {
            left = scan_lineitems Plan.Seq_scan;
            right = scan_all "orders";
            left_key = "lineitems.l_order";
            right_key = "orders.o_id";
          } );
      ( "indexed-nl-join",
        catalog,
        Plan.Indexed_nl_join
          {
            outer = scan_lineitems Plan.Seq_scan;
            outer_key = "lineitems.l_order";
            inner_table = "orders";
            inner_key = "o_id";
            inner_pred = Pred.True;
          } );
      ( "star-semijoin",
        star,
        Plan.Star_semijoin { fact = "fact"; fact_pred = Pred.True; dims = [ dim 1; dim 2; dim 3 ] }
      );
      ( "agg-filter-project-sort",
        catalog,
        Plan.Sort
          {
            input =
              Plan.Aggregate
                {
                  input =
                    Plan.Project
                      ( Plan.Filter (scan_lineitems Plan.Seq_scan, Pred.True),
                        [ "lineitems.l_order"; "lineitems.l_qty" ] );
                  group_by = [ "lineitems.l_order" ];
                  aggs =
                    [
                      { Plan.fn = Plan.Count_star; output_name = "n" };
                      { Plan.fn = Plan.Sum (Expr.col "lineitems.l_qty"); output_name = "q" };
                    ];
                };
            keys = [ { Plan.sort_column = "n"; descending = true } ];
          } );
      ( "guard-pass",
        catalog,
        Plan.Guard
          {
            input = scan_lineitems Plan.Seq_scan;
            expected_rows = 1000.0;
            max_q_error = 1e9;
            label = "wide";
          } );
    ]
  in
  List.iter
    (fun (name, cat, plan) ->
      (match Plan.validate cat plan with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": fixture plan invalid: " ^ msg));
      let sres, ssnap = run_mode Executor.Streaming cat plan in
      let mres, msnap = run_mode Executor.Materialized cat plan in
      check_results name sres mres;
      check_snapshots name ssnap msnap)
    families

(* ------------------------------------------------------------------ *)
(* LIMIT early exit                                                    *)
(* ------------------------------------------------------------------ *)

let test_limit_early_exit () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let plan = Plan.Limit (scan_all "lineitems", 10) in
  let sres, ssnap = run_mode Executor.Streaming catalog plan in
  let mres, msnap = run_mode Executor.Materialized catalog plan in
  (* Same answer... *)
  check_results "limit-scan" sres mres;
  check_int "limit honored" 10 (Array.length sres.Executor.tuples);
  (* ...but the materialized engine paid for the whole table while the
     streaming engine stopped pulling after the first batch. *)
  check_int "materialized scans every page" (Relation.page_count lineitems)
    msnap.Cost.seq_pages;
  check_bool
    (Printf.sprintf "streaming charges strictly fewer seq pages (%d < %d)"
       ssnap.Cost.seq_pages msnap.Cost.seq_pages)
    true
    (ssnap.Cost.seq_pages < msnap.Cost.seq_pages);
  check_bool "streaming charges strictly fewer cpu tuples" true
    (ssnap.Cost.cpu_tuples < msnap.Cost.cpu_tuples)

(* A LIMIT larger than the input is a full drain: exact parity again. *)
let test_limit_full_drain_parity () =
  let catalog = chain_catalog () in
  let plan = Plan.Limit (scan_all "lineitems", 10_000) in
  let sres, ssnap = run_mode Executor.Streaming catalog plan in
  let mres, msnap = run_mode Executor.Materialized catalog plan in
  check_results "limit-full-drain" sres mres;
  check_snapshots "limit-full-drain" ssnap msnap

(* ------------------------------------------------------------------ *)
(* Mid-stream guard firing                                             *)
(* ------------------------------------------------------------------ *)

let overflow_guard input =
  Plan.Guard { input; expected_rows = 4.0; max_q_error = 2.0; label = "overflow" }

let test_guard_fires_mid_stream () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let n = Relation.row_count lineitems in
  let plan = overflow_guard (scan_all "lineitems") in
  let fire mode =
    let meter = Cost.create ~scale:2.0 () in
    match Executor.run ~mode catalog meter plan with
    | _ -> Alcotest.fail "guard did not fire"
    | exception Executor.Guard_violation v -> (v, Cost.snapshot meter)
  in
  let sv, ssnap = fire Executor.Streaming in
  let mv, msnap = fire Executor.Materialized in
  (* Materialized only notices after consuming everything. *)
  check_bool "materialized fires complete" true mv.Executor.complete;
  check_int "materialized saw every row" n mv.Executor.actual_rows;
  check_bool "materialized has no resume" true (mv.Executor.resume = None);
  (* Streaming fires on the batch that makes the overflow unrecoverable:
     the violation carries the partial prefix and a resumable tail. *)
  check_bool "streaming fires mid-stream" false sv.Executor.complete;
  check_int "streaming stopped after one batch" Stream_exec.batch_rows
    sv.Executor.actual_rows;
  check_int "partial result carries the consumed prefix" Stream_exec.batch_rows
    (Array.length sv.Executor.result.Executor.tuples);
  check_bool "progress is a real fraction" true
    (sv.Executor.progress > 0.0 && sv.Executor.progress < 1.0);
  check_float "progress = consumed fraction"
    (float_of_int Stream_exec.batch_rows /. float_of_int n)
    sv.Executor.progress;
  (match sv.Executor.resume with
  | Some (Plan.Scan_resume { table; from_rid; _ }) ->
      check_bool "resume names the table" true (table = "lineitems");
      check_int "resume starts where the stream stopped" Stream_exec.batch_rows from_rid
  | _ -> Alcotest.fail "streaming violation should carry a Scan_resume tail");
  check_bool
    (Printf.sprintf "mid-stream firing charged fewer pages (%d < %d)" ssnap.Cost.seq_pages
       msnap.Cost.seq_pages)
    true
    (ssnap.Cost.seq_pages < msnap.Cost.seq_pages);
  (* The prefix + resume tail replays to exactly the full scan, under
     either engine: this is the continuation the reopt loop builds. *)
  let full, _ = run_mode Executor.Materialized catalog (scan_all "lineitems") in
  let continuation =
    Plan.Append
      [
        Plan.Materialized
          {
            name = "prefix";
            schema = sv.Executor.result.Executor.schema;
            tuples = sv.Executor.result.Executor.tuples;
            refs = [];
          };
        (match sv.Executor.resume with Some p -> p | None -> assert false);
      ]
  in
  let cs, _ = run_mode Executor.Streaming catalog continuation in
  let cm, _ = run_mode Executor.Materialized catalog continuation in
  check_results "continuation engines agree" cs cm;
  check_bool "prefix + tail = full scan" true (cs.Executor.tuples = full.Executor.tuples)

(* Underflow is only judgeable at drain: both engines fire with the input
   fully consumed, identical q-errors, identical meters. *)
let test_guard_underflow_drain_parity () =
  let catalog = chain_catalog () in
  let lineitems = Catalog.find_table catalog "lineitems" in
  let n = Relation.row_count lineitems in
  let plan =
    Plan.Guard
      {
        input = scan_all "lineitems";
        expected_rows = 1e6;
        max_q_error = 2.0;
        label = "underflow";
      }
  in
  let fire mode =
    let meter = Cost.create ~scale:2.0 () in
    match Executor.run ~mode catalog meter plan with
    | _ -> Alcotest.fail "guard did not fire"
    | exception Executor.Guard_violation v -> (v, Cost.snapshot meter)
  in
  let sv, ssnap = fire Executor.Streaming in
  let mv, msnap = fire Executor.Materialized in
  check_bool "streaming underflow is complete" true sv.Executor.complete;
  check_bool "no resume on a complete firing" true (sv.Executor.resume = None);
  check_int "both saw every row" mv.Executor.actual_rows sv.Executor.actual_rows;
  check_int "every row means every row" n sv.Executor.actual_rows;
  check_float "identical q-error" mv.Executor.q_error sv.Executor.q_error;
  check_snapshots "underflow drain" ssnap msnap

(* ------------------------------------------------------------------ *)
(* Recovery leaves: Scan_resume and Append                             *)
(* ------------------------------------------------------------------ *)

let test_scan_resume_from_zero_is_a_scan () =
  let catalog = chain_catalog () in
  let resume = Plan.Scan_resume { table = "lineitems"; pred = qty_pred; from_rid = 0 } in
  let sres, ssnap = run_mode Executor.Streaming catalog resume in
  let mres, msnap = run_mode Executor.Materialized catalog resume in
  check_results "scan-resume-0 engines agree" sres mres;
  check_snapshots "scan-resume-0 engines agree" ssnap msnap;
  let scan, scan_snap = run_mode Executor.Materialized catalog (scan_lineitems Plan.Seq_scan) in
  check_results "scan-resume-0 = plain scan" sres scan;
  check_snapshots "scan-resume-0 = plain scan" ssnap scan_snap

let test_append_prefix_resume () =
  let catalog = chain_catalog () in
  let split = 600 in
  let full, _ = run_mode Executor.Materialized catalog (scan_all "lineitems") in
  let plan =
    Plan.Append
      [
        Plan.Materialized
          {
            name = "prefix";
            schema = full.Executor.schema;
            tuples = Array.sub full.Executor.tuples 0 split;
            refs = [];
          };
        Plan.Scan_resume { table = "lineitems"; pred = Pred.True; from_rid = split };
      ]
  in
  let sres, ssnap = run_mode Executor.Streaming catalog plan in
  let mres, msnap = run_mode Executor.Materialized catalog plan in
  check_results "append engines agree" sres mres;
  check_snapshots "append engines agree" ssnap msnap;
  check_bool "append = full scan" true (sres.Executor.tuples = full.Executor.tuples);
  (* The whole point: the replay does not re-read the prefix's pages. *)
  let lineitems = Catalog.find_table catalog "lineitems" in
  check_int "tail pages only"
    (Relation.page_count lineitems - (split / Relation.rows_per_page lineitems))
    ssnap.Cost.seq_pages

(* ------------------------------------------------------------------ *)
(* Hash join duplicate-key ordering                                    *)
(* ------------------------------------------------------------------ *)

(* Build side on a duplicated key (many lineitems per order): matches for
   a probe row must come out in build-input order, identically in both
   engines, and equal to a reference nested loop. *)
let test_hash_join_duplicate_key_order () =
  let catalog = chain_catalog () in
  let plan =
    Plan.Hash_join
      {
        build = scan_all "lineitems";
        probe = scan_all "orders";
        build_key = "lineitems.l_order";
        probe_key = "orders.o_id";
      }
  in
  let sres, _ = run_mode Executor.Streaming catalog plan in
  let mres, _ = run_mode Executor.Materialized catalog plan in
  check_results "dup-key join engines agree" sres mres;
  let lineitems = Catalog.find_table catalog "lineitems" in
  let orders = Catalog.find_table catalog "orders" in
  let expected = ref [] in
  for o = 0 to Relation.row_count orders - 1 do
    let otup = Relation.get orders o in
    for l = 0 to Relation.row_count lineitems - 1 do
      let ltup = Relation.get lineitems l in
      if Value.compare ltup.(1) otup.(0) = 0 then
        expected := Array.append ltup otup :: !expected
    done
  done;
  let expected = Array.of_list (List.rev !expected) in
  check_int "reference row count" (Array.length expected) (Array.length sres.Executor.tuples);
  check_bool "build-input order within duplicate keys" true
    (sres.Executor.tuples = expected)

(* ------------------------------------------------------------------ *)
(* End-to-end: mid-stream firing through the reopt loop                *)
(* ------------------------------------------------------------------ *)

(* Force a bad plan whose guards blow up mid-stream; the reopt loop must
   still produce the right answer (prefix reuse included) and it must
   match what the materialized path computes for the same query. *)
let test_reopt_mid_stream_correctness () =
  let catalog = chain_catalog () in
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create 41) catalog in
  let query =
    Logical.query [ Logical.scan ~pred:qty_pred "lineitems"; Logical.scan "orders" ]
  in
  let bad_plan =
    Plan.Indexed_nl_join
      {
        outer = scan_lineitems Plan.Seq_scan;
        outer_key = "lineitems.l_order";
        inner_table = "orders";
        inner_key = "o_id";
        inner_pred = Pred.True;
      }
  in
  let run mode =
    let opt = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in
    Reopt.execute_plan ~threshold:4.0 ~mode opt query bad_plan
  in
  let streaming = run Executor.Streaming in
  let materialized = run Executor.Materialized in
  check_bool "a guard fired under streaming" true (streaming.Reopt.events <> []);
  check_bool "streaming replanned" true
    (List.exists (fun (e : Reopt.event) -> e.Reopt.replanned) streaming.Reopt.events);
  check_bool "same answer as the materialized reopt path" true
    (Rq_experiments.Exp_common.results_equal streaming.Reopt.result materialized.Reopt.result);
  (* And against a trusted plain plan for the same query. *)
  let reference, _ =
    run_mode Executor.Materialized catalog
      (Plan.Hash_join
         {
           build = scan_all "orders";
           probe = scan_lineitems Plan.Seq_scan;
           build_key = "orders.o_id";
           probe_key = "lineitems.l_order";
         })
  in
  check_bool "same answer as a trusted plan" true
    (Rq_experiments.Exp_common.results_equal streaming.Reopt.result reference)

(* ------------------------------------------------------------------ *)
(* Vectorized-vs-row data plane laws (qcheck)                          *)
(* ------------------------------------------------------------------ *)

(* The streaming engine carries two data planes: the default vectorized
   one (column-major batches + selection bitsets) and the row-at-a-time
   one behind [Vectorize.enabled := false].  The law is total parity:
   byte-identical tuples and identical cost counters on random
   null-bearing data, including empty selections (predicates matching
   nothing), whole chunks disproved by zone maps, and relations sized to
   straddle batch-window and chunk boundaries. *)

(* Five 20-byte string pads push row_bytes to 124, so a chunk holds
   [16 * (8192 / 124)] = 1056 rows — just above [Stream_exec.batch_rows]
   (1024).  A ~2 200-row table therefore exercises batch splits inside a
   chunk AND multi-chunk scans without being slow to generate. *)
let vec_schema =
  Schema.create
    ({ Schema.name = "t_id"; ty = Value.T_int }
    :: { Schema.name = "t_k"; ty = Value.T_int }
    :: { Schema.name = "t_v"; ty = Value.T_float }
    :: List.map
         (fun i -> { Schema.name = Printf.sprintf "t_s%d" i; ty = Value.T_string })
         [ 1; 2; 3; 4; 5 ])

let vec_chunk_rows = Page.rows_per_chunk vec_schema

type vec_case = {
  vc_seed : int;
  vc_big : int;   (* big-table rows *)
  vc_dim : int;   (* dim-table rows *)
  vc_plan : int;  (* plan family pick *)
  vc_c : int;     (* clustered band bound (can be <= 0: empty selection) *)
  vc_k : int;     (* scattered key bound *)
  vc_limit : int;
}

let render_vec_case c =
  Printf.sprintf "{seed=%d; big=%d; dim=%d; plan=%d; c=%d; k=%d; limit=%d}" c.vc_seed
    c.vc_big c.vc_dim c.vc_plan c.vc_c c.vc_k c.vc_limit

let gen_vec_case : vec_case QCheck.Gen.t =
  let open QCheck.Gen in
  let boundary_sizes =
    oneofl
      [
        1;
        Stream_exec.batch_rows;
        Stream_exec.batch_rows + 1;
        vec_chunk_rows;
        vec_chunk_rows + 1;
        (2 * vec_chunk_rows) + 17;
      ]
  in
  int_bound 1_000_000 >>= fun vc_seed ->
  oneof [ boundary_sizes; int_range 1 ((2 * vec_chunk_rows) + 300) ] >>= fun vc_big ->
  int_range 1 60 >>= fun vc_dim ->
  int_bound 7 >>= fun vc_plan ->
  int_range (-1) (2 * vec_chunk_rows) >>= fun vc_c ->
  int_bound 40 >>= fun vc_k ->
  oneofl [ 1; 7; Stream_exec.batch_rows; Stream_exec.batch_rows + 1; max_int / 2 ]
  >>= fun vc_limit -> return { vc_seed; vc_big; vc_dim; vc_plan; vc_c; vc_k; vc_limit }

(* Clustered ascending t_id (so the band predicate disproves whole chunks
   by zone map), null-bearing t_k and t_v (1 in 8). *)
let vec_case_catalog c =
  let rng = Rq_math.Rng.create c.vc_seed in
  let pad () =
    String.init (1 + Rq_math.Rng.int rng 6) (fun _ -> Char.chr (97 + Rq_math.Rng.int rng 26))
  in
  let maybe_null v = if Rq_math.Rng.int rng 8 = 0 then Value.Null else v in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"t_id"
    (Relation.create ~name:"big" ~schema:vec_schema
       (Array.init c.vc_big (fun i ->
            [|
              v_int i;
              maybe_null (v_int (Rq_math.Rng.int rng 40));
              maybe_null (Value.Float (Rq_math.Rng.float rng 100.0));
              Value.String (pad ());
              Value.String (pad ());
              Value.String (pad ());
              Value.String (pad ());
              Value.String (pad ());
            |])));
  Catalog.add_table catalog ~primary_key:"d_id"
    (Relation.create ~name:"dim"
       ~schema:
         (Schema.create
            [
              { Schema.name = "d_id"; ty = Value.T_int };
              { Schema.name = "d_k"; ty = Value.T_int };
            ])
       (Array.init c.vc_dim (fun i ->
            [| v_int i; maybe_null (v_int (Rq_math.Rng.int rng 40)) |])));
  catalog

let vec_case_plan c =
  let scan pred = Plan.Scan { table = "big"; access = Plan.Seq_scan; pred } in
  let band = Pred.lt (Expr.col "t_id") (Expr.int c.vc_c) in
  let keyp = Pred.le (Expr.col "t_k") (Expr.int c.vc_k) in
  match c.vc_plan with
  | 0 -> scan band (* zone-skipped chunks; empty when c <= 0 *)
  | 1 -> scan keyp (* scattered selection with null keys *)
  | 2 -> Plan.Filter (scan band, Pred.le (Expr.col "big.t_k") (Expr.int c.vc_k))
  | 3 -> Plan.Project (scan keyp, [ "big.t_k"; "big.t_v" ])
  | 4 -> Plan.Limit (scan Pred.True, c.vc_limit)
  | 5 ->
      Plan.Hash_join
        {
          build = Plan.Scan { table = "dim"; access = Plan.Seq_scan; pred = Pred.True };
          probe = scan keyp;
          build_key = "dim.d_k";
          probe_key = "big.t_k";
        }
  | 6 ->
      Plan.Aggregate
        {
          input = scan band;
          group_by = [ "big.t_k" ];
          aggs =
            [
              { Plan.fn = Plan.Count_star; output_name = "n" };
              { Plan.fn = Plan.Sum (Expr.col "big.t_v"); output_name = "s" };
            ];
        }
  | _ ->
      (* every batch drained with an empty selection, under a guard *)
      Plan.Guard
        {
          input = Plan.Filter (scan Pred.True, Pred.False);
          expected_rows = 1.0;
          max_q_error = 1e12;
          label = "empty";
        }

let run_plane enabled catalog plan =
  Vectorize.with_vectorize enabled (fun () ->
      let meter = Cost.create ~scale:2.0 () in
      let res = Executor.run ~mode:Executor.Streaming catalog meter plan in
      (res, Cost.snapshot meter))

let planes_agree ~label catalog plan =
  let vres, vsnap = run_plane true catalog plan in
  let rres, rsnap = run_plane false catalog plan in
  if vres.Executor.tuples <> rres.Executor.tuples then
    QCheck.Test.fail_reportf "%s: planes returned different tuples (%d vec vs %d row)" label
      (Array.length vres.Executor.tuples)
      (Array.length rres.Executor.tuples)
  else if not (Rq_experiments.Exp_common.snapshots_equal vsnap rsnap) then
    QCheck.Test.fail_reportf "%s: counters diverge\nvec: %s\nrow: %s" label
      (Format.asprintf "%a" Cost.pp_snapshot vsnap)
      (Format.asprintf "%a" Cost.pp_snapshot rsnap)
  else true

let vec_parity_law =
  QCheck.Test.make ~name:"vectorized plane = row plane (tuples + counters)" ~count:48
    (QCheck.make ~print:render_vec_case gen_vec_case)
    (fun c ->
      let catalog = vec_case_catalog c in
      let plan = vec_case_plan c in
      (match Plan.validate catalog plan with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "generator produced invalid plan: %s" msg);
      planes_agree ~label:(render_vec_case c) catalog plan)

(* Deterministic edge sweep: the named boundary shapes, each through every
   plan family.  Redundant with the law above in expectation; pinned here
   so a regression names the exact shape. *)
let test_vec_edge_shapes () =
  List.iter
    (fun (shape, c) ->
      List.iter
        (fun plan_pick ->
          let c = { c with vc_plan = plan_pick } in
          let catalog = vec_case_catalog c in
          let plan = vec_case_plan c in
          ignore (planes_agree ~label:(Printf.sprintf "%s/plan%d" shape plan_pick) catalog plan))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])
    [
      ( "single-row",
        { vc_seed = 3; vc_big = 1; vc_dim = 1; vc_plan = 0; vc_c = 1; vc_k = 20; vc_limit = 1 }
      );
      ( "empty-selection",
        {
          vc_seed = 5;
          vc_big = vec_chunk_rows + 1;
          vc_dim = 8;
          vc_plan = 0;
          vc_c = -1;
          vc_k = 0;
          vc_limit = 7;
        } );
      ( "batch-boundary",
        {
          vc_seed = 7;
          vc_big = Stream_exec.batch_rows + 1;
          vc_dim = 8;
          vc_plan = 0;
          vc_c = Stream_exec.batch_rows;
          vc_k = 20;
          vc_limit = Stream_exec.batch_rows;
        } );
      ( "chunk-boundary",
        {
          vc_seed = 11;
          vc_big = vec_chunk_rows;
          vc_dim = 8;
          vc_plan = 0;
          vc_c = vec_chunk_rows - 1;
          vc_k = 20;
          vc_limit = vec_chunk_rows;
        } );
      ( "multi-chunk-band",
        {
          vc_seed = 13;
          vc_big = (2 * vec_chunk_rows) + 17;
          vc_dim = 16;
          vc_plan = 0;
          vc_c = vec_chunk_rows / 2;
          vc_k = 20;
          vc_limit = 100;
        } );
    ]

let () =
  Alcotest.run "stream"
    [
      ( "parity",
        [
          Alcotest.test_case "every plan family: tuples + all counters" `Quick
            test_family_parity;
          Alcotest.test_case "LIMIT >= input is a full drain" `Quick
            test_limit_full_drain_parity;
          Alcotest.test_case "Scan_resume from 0 = Scan" `Quick
            test_scan_resume_from_zero_is_a_scan;
        ] );
      ( "early-exit",
        [
          Alcotest.test_case "LIMIT stops pulling and pays less I/O" `Quick
            test_limit_early_exit;
          Alcotest.test_case "guard fires mid-stream with a resumable prefix" `Quick
            test_guard_fires_mid_stream;
          Alcotest.test_case "underflow fires at drain, in lockstep" `Quick
            test_guard_underflow_drain_parity;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "Append prefix + Scan_resume tail replays the scan" `Quick
            test_append_prefix_resume;
          Alcotest.test_case "hash join keeps build-input order on duplicate keys" `Quick
            test_hash_join_duplicate_key_order;
          Alcotest.test_case "mid-stream reopt returns the right answer" `Quick
            test_reopt_mid_stream_correctness;
        ] );
      ( "vectorized",
        [
          QCheck_alcotest.to_alcotest vec_parity_law;
          Alcotest.test_case "boundary shapes through every family" `Quick
            test_vec_edge_shapes;
        ] );
    ]
