(* Morsel-parallel execution suite: the domain pool's claiming discipline
   (in-order claims, contiguous completed prefix on abort), exact parity
   of the parallel engine with the serial materialized engine — result
   tuples and every cost counter, at every pool size — the parallel
   guard's mid-flight firing with an exactly-resumable prefix, span/meter
   reconciliation under a recorder, and a multi-domain stress of the
   sharded plan cache and the evidence-kernel memos. *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* orders <- lineitems, big enough that a lineitems scan spans more
   morsels than the pool has domains (morsel = one column chunk of 5456
   rows for this 24-byte schema), so a guarded batch can stop before
   every morsel is claimed. *)
let fixture ?(lineitems = 30_000) () =
  let rng = Rq_math.Rng.create 23 in
  let catalog = Catalog.create () in
  let orders = 400 in
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [
              { Schema.name = "o_id"; ty = Value.T_int };
              { Schema.name = "o_status"; ty = Value.T_int };
            ])
       (Array.init orders (fun i -> [| v_int i; v_int (i mod 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_order";
  Catalog.build_index catalog ~table:"lineitems" ~column:"l_qty";
  catalog

let scan table = Plan.Scan { table; access = Plan.Seq_scan; pred = Pred.True }

let join =
  Plan.Hash_join
    {
      build = scan "orders";
      probe = scan "lineitems";
      build_key = "orders.o_id";
      probe_key = "lineitems.l_order";
    }

(* ------------------------------------------------------------------ *)
(* Domain_pool semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_in_order () =
  List.iter
    (fun domains ->
      let pool = Domain_pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () ->
          check_int "size" domains (Domain_pool.size pool);
          let results = Domain_pool.run pool 37 (fun i -> i * i) in
          check_int "all tasks ran" 37 (Array.length results);
          Array.iteri
            (fun i r -> check_int (Printf.sprintf "slot %d" i) (i * i) r)
            results;
          (* The pool is persistent: a second batch reuses the workers. *)
          let again = Domain_pool.run pool 5 (fun i -> i + 100) in
          check_int "second batch" 104 again.(4)))
    [ 1; 2; 4 ];
  Alcotest.check_raises "domains must be positive"
    (Invalid_argument "Domain_pool.create: domains must be >= 1") (fun () ->
      ignore (Domain_pool.create ~domains:0 ()))

exception Task_failed of int

let test_pool_reraises_smallest_index () =
  let pool = Domain_pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      (match Domain_pool.run pool 20 (fun i -> if i mod 5 = 3 then raise (Task_failed i) else i) with
      | _ -> Alcotest.fail "batch should have aborted"
      | exception Task_failed i -> check_int "smallest failed index wins" 3 i);
      (* The pool survives an aborted batch. *)
      let ok = Domain_pool.run pool 4 (fun i -> i) in
      check_int "pool alive after abort" 3 ok.(3))

let test_pool_prefix_is_contiguous () =
  List.iter
    (fun domains ->
      let pool = Domain_pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () ->
          let stop_at = 7 in
          let prefix =
            Domain_pool.run_prefix pool 40 (fun i ->
                if i = stop_at then `Stop (i * 10) else `Done (i * 10))
          in
          let k = Array.length prefix in
          (* Claims are issued in order and claimed tasks finish, so the
             stopping task and everything before it are always present. *)
          check_bool "prefix covers the stopper" true (k > stop_at);
          check_bool "prefix did not run the whole batch" true (k < 40 || domains = 1);
          Array.iteri
            (fun i r -> check_int (Printf.sprintf "prefix slot %d" i) (i * 10) r)
            prefix))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Parallel = serial, counter for counter                              *)
(* ------------------------------------------------------------------ *)

let parity_plans =
  [
    ("full scan", scan "lineitems");
    ( "filtered scan",
      Plan.Scan
        {
          table = "lineitems";
          access = Plan.Seq_scan;
          pred = Pred.le (Expr.col "l_qty") (Expr.int 25);
        } );
    ("hash join", join);
    ("limit over join", Plan.Limit (join, 500));
    ( "aggregate over join",
      Plan.Aggregate
        {
          input = join;
          group_by = [ "orders.o_status" ];
          aggs = [ { Plan.fn = Plan.Sum (Expr.col "lineitems.l_qty"); output_name = "qty" } ];
        } );
    ( "sort over scan",
      Plan.Sort
        {
          input = scan "lineitems";
          keys = [ { Plan.sort_column = "lineitems.l_qty"; descending = true } ];
        } );
  ]

let test_parallel_matches_serial () =
  let catalog = fixture () in
  List.iter
    (fun (name, plan) ->
      let serial_meter = Cost.create () in
      let serial = Executor.run ~mode:Executor.Materialized catalog serial_meter plan in
      let serial_snap = Cost.snapshot serial_meter in
      List.iter
        (fun domains ->
          let par = Parallel.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Parallel.shutdown par)
            (fun () ->
              let meter = Cost.create () in
              let result = Parallel.run par catalog meter plan in
              check_bool
                (Printf.sprintf "%s: tuples identical at %d domains" name domains)
                true
                (result.Executor.tuples = serial.Executor.tuples);
              check_bool
                (Printf.sprintf "%s: counters identical at %d domains" name domains)
                true
                (Rq_experiments.Exp_common.snapshots_equal (Cost.snapshot meter) serial_snap)))
        [ 1; 2; 4 ])
    parity_plans

let test_morsels_account_for_every_page () =
  let catalog = fixture () in
  let par = Parallel.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown par)
    (fun () ->
      let meter = Cost.create () in
      let _, report = Parallel.run_report par catalog meter (scan "lineitems") in
      check_bool "several morsels" true (report.Parallel.morsels > 1);
      check_int "one timing per morsel" report.Parallel.morsels
        (Array.length report.Parallel.morsel_seconds);
      let parts =
        Array.fold_left ( +. ) report.Parallel.serial_seconds report.Parallel.morsel_seconds
      in
      check_float "morsel + serial seconds = meter movement" report.Parallel.total_seconds
        parts;
      (* The greedy schedule is monotone: more domains never slow it down,
         and one domain is exactly the serial total. *)
      check_float "makespan at 1 = total" report.Parallel.total_seconds
        (Parallel.makespan ~domains:1 report);
      check_bool "4 domains beat 1" true
        (Parallel.makespan ~domains:4 report < Parallel.makespan ~domains:1 report))

(* ------------------------------------------------------------------ *)
(* The parallel guard                                                  *)
(* ------------------------------------------------------------------ *)

let test_parallel_guard_fires_with_resume () =
  let catalog = fixture () in
  let guarded =
    Plan.Guard
      { input = scan "lineitems"; expected_rows = 4.0; max_q_error = 2.0; label = "t" }
  in
  let full_meter = Cost.create () in
  let full = Executor.run ~mode:Executor.Materialized catalog full_meter (scan "lineitems") in
  let par = Parallel.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown par)
    (fun () ->
      let meter = Cost.create () in
      match Parallel.run par catalog meter guarded with
      | _ -> Alcotest.fail "guard should have fired"
      | exception Executor.Guard_violation v -> (
          check_bool "not complete" false v.Executor.complete;
          check_bool "progress in (0, 1)" true
            (v.Executor.progress > 0.0 && v.Executor.progress < 1.0);
          let prefix_rows = Array.length v.Executor.result.Executor.tuples in
          check_bool "prefix is non-empty" true (prefix_rows > 0);
          match v.Executor.resume with
          | Some (Plan.Scan_resume { from_rid; _ } as resume) ->
              (* Full scan, Pred.True: the prefix holds exactly the rows
                 before the resume point. *)
              check_int "resume starts where the prefix ends" prefix_rows from_rid;
              let replay_meter = Cost.create () in
              let replay =
                Executor.run ~mode:Executor.Materialized catalog replay_meter
                  (Plan.Append
                     [
                       Plan.Materialized
                         {
                           name = "prefix";
                           schema = v.Executor.result.Executor.schema;
                           tuples = v.Executor.result.Executor.tuples;
                           refs = [];
                         };
                       resume;
                     ])
              in
              check_bool "prefix + resume = the full scan" true
                (replay.Executor.tuples = full.Executor.tuples)
          | _ -> Alcotest.fail "expected a Scan_resume continuation"))

(* ------------------------------------------------------------------ *)
(* Span / meter reconciliation                                         *)
(* ------------------------------------------------------------------ *)

let test_parallel_obs_reconciles () =
  let catalog = fixture () in
  let par = Parallel.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown par)
    (fun () ->
      List.iter
        (fun (name, plan) ->
          let obs = Rq_obs.Recorder.create () in
          let meter = Cost.create () in
          ignore (Parallel.run ~obs par catalog meter plan);
          let self = Rq_obs.Recorder.sum_self (Rq_obs.Recorder.roots obs) in
          check_float
            (Printf.sprintf "%s: span self-seconds = meter seconds" name)
            (Cost.snapshot meter).Cost.seconds self.Rq_obs.Metrics.seconds)
        [ ("scan", scan "lineitems"); ("join", join); ("limit", Plan.Limit (join, 500)) ])

(* ------------------------------------------------------------------ *)
(* Sharded plan cache + evidence memos under domains                   *)
(* ------------------------------------------------------------------ *)

let stress_query ~threshold =
  Logical.query
    [
      Logical.scan ~pred:(Pred.le (Expr.col "l_qty") (Expr.int threshold)) "lineitems";
      Logical.scan "orders";
    ]

let fingerprint_of opt q =
  Rq_sql.Fingerprint.to_key
    (Rq_sql.Fingerprint.of_logical ~estimator:(Optimizer.estimator opt).Cardinality.name q)

let test_sharded_cache_stress () =
  let domains = 4 and ops_per_domain = 40 in
  let sharded = Plan_cache.Sharded.create ~capacity:(2 * domains) ~shards:domains () in
  check_int "one shard per domain, same index modulo" (Plan_cache.Sharded.length sharded) 0;
  (* Serial reference for the evidence kernel: the bitset count every
     domain's private Pred_index must reproduce. *)
  let probe_pred = Pred.le (Expr.col "l_qty") (Expr.int 25) in
  let expected_count =
    let rel = Catalog.find_table (fixture ~lineitems:4000 ()) "lineitems" in
    Relation.filter_count rel (Pred.compile (Relation.schema rel) probe_pred)
  in
  let worker d () =
    (* Each domain owns a full world rebuilt from the same seed, its own
       statistics maintenance, and its own cache shard. *)
    let catalog = fixture ~lineitems:4000 () in
    let m = Rq_stats.Maintenance.create (Rq_math.Rng.create 91) catalog in
    let shard = Plan_cache.Sharded.shard sharded d in
    let ops = ref 0 in
    for k = 0 to ops_per_domain - 1 do
      if k mod 13 = 12 then Rq_stats.Maintenance.refresh m;
      let opt = Optimizer.robust (Rq_stats.Maintenance.stats m) in
      let q = stress_query ~threshold:(5 + (k mod 6)) in
      match Plan_cache.find_or_optimize shard opt ~fingerprint:(fingerprint_of opt q) q with
      | Ok _ -> incr ops
      | Error e -> failwith e
    done;
    let rel = Catalog.find_table catalog "lineitems" in
    let idx = Rq_stats.Pred_index.create rel in
    let count = Rq_stats.Pred_index.count idx probe_pred in
    let again = Rq_stats.Pred_index.count idx probe_pred in
    (!ops, count, again)
  in
  let handles = Array.init domains (fun d -> Domain.spawn (worker d)) in
  let per_domain = Array.map Domain.join handles in
  let total_ops = Array.fold_left (fun acc (o, _, _) -> acc + o) 0 per_domain in
  check_int "every lookup answered" (domains * ops_per_domain) total_ops;
  Array.iteri
    (fun d (_, count, again) ->
      check_int (Printf.sprintf "domain %d kernel count = serial scan" d) expected_count count;
      check_int (Printf.sprintf "domain %d cached re-ask" d) expected_count again)
    per_domain;
  (* Merged shard counters must account for every lookup, and the merged
     view must be exactly the per-shard sum. *)
  let merged = Plan_cache.Sharded.stats sharded in
  check_int "hits + misses + invalidations = lookups" (domains * ops_per_domain)
    (Plan_cache.lookups merged);
  let manual =
    Array.fold_left
      (fun acc shard -> Plan_cache.add_stats acc (Plan_cache.stats shard))
      Plan_cache.zero_stats
      (Array.init domains (Plan_cache.Sharded.shard sharded))
  in
  check_int "merged hits = summed hits" manual.Plan_cache.hits merged.Plan_cache.hits;
  check_int "merged misses = summed misses" manual.Plan_cache.misses merged.Plan_cache.misses;
  check_int "merged invalidations = summed"
    manual.Plan_cache.invalidations merged.Plan_cache.invalidations;
  check_int "merged evictions = summed" manual.Plan_cache.evictions merged.Plan_cache.evictions;
  check_bool "identical worlds populated every shard" true
    (Plan_cache.Sharded.length sharded >= domains);
  (* Shard routing is total and modular: any domain id lands somewhere. *)
  ignore (Plan_cache.Sharded.shard sharded (domains + 3));
  ignore (Plan_cache.Sharded.shard sharded (-1))

let () =
  Alcotest.run "rq_parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "runs every index in order" `Quick test_pool_runs_in_order;
          Alcotest.test_case "re-raises the smallest failed index" `Quick
            test_pool_reraises_smallest_index;
          Alcotest.test_case "stop yields a contiguous prefix" `Quick
            test_pool_prefix_is_contiguous;
        ] );
      ( "parity",
        [
          Alcotest.test_case "parallel = serial across plan families" `Quick
            test_parallel_matches_serial;
          Alcotest.test_case "morsel accounting is exact" `Quick
            test_morsels_account_for_every_page;
        ] );
      ( "guard",
        [
          Alcotest.test_case "fires mid-flight with an exact resume" `Quick
            test_parallel_guard_fires_with_resume;
        ] );
      ( "obs",
        [
          Alcotest.test_case "spans reconcile with the meter" `Quick
            test_parallel_obs_reconciles;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "cache + kernel memos from N domains" `Quick
            test_sharded_cache_stress;
        ] );
    ]
