(* Unit and property tests for rq_storage: values, schemas, relations, RID
   sets, indexes, catalog. *)

open Rq_storage

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_ordering () =
  check_bool "null < bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  check_bool "bool < int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  check_bool "int < string" true (Value.compare (Value.Int 99) (Value.String "a") < 0);
  check_bool "string < date" true (Value.compare (Value.String "zzz") (Value.Date 0) < 0);
  check_int "int ordering" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  check_int "string ordering" 1 (Value.compare (Value.String "b") (Value.String "a"))

let test_value_numeric_cross_compare () =
  check_int "Int = Float" 0 (Value.compare (Value.Int 3) (Value.Float 3.0));
  check_bool "Int < Float" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  check_bool "Float > Int" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0)

let test_value_to_float () =
  Alcotest.(check (float 0.0)) "int" 5.0 (Value.to_float (Value.Int 5));
  Alcotest.(check (float 0.0)) "bool" 1.0 (Value.to_float (Value.Bool true));
  Alcotest.check_raises "string" (Invalid_argument "Value.to_float: String") (fun () ->
      ignore (Value.to_float (Value.String "x")));
  Alcotest.check_raises "null" (Invalid_argument "Value.to_float: Null") (fun () ->
      ignore (Value.to_float Value.Null))

let test_value_date_known () =
  (* 1970-01-01 is day 0; 2000-03-01 is day 11017. *)
  check_int "epoch" 0
    (match Value.date_of_ymd ~year:1970 ~month:1 ~day:1 with Value.Date d -> d | _ -> -1);
  check_int "2000-03-01" 11017
    (match Value.date_of_ymd ~year:2000 ~month:3 ~day:1 with Value.Date d -> d | _ -> -1);
  Alcotest.(check (triple int int int)) "roundtrip"
    (1997, 7, 1)
    (Value.ymd_of_date (Value.date_of_ymd ~year:1997 ~month:7 ~day:1))

let prop_value_date_roundtrip =
  QCheck.Test.make ~name:"date ymd roundtrip over 400 years" ~count:500
    QCheck.(triple (int_range 1900 2299) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let date = Value.date_of_ymd ~year:y ~month:m ~day:d in
      Value.ymd_of_date date = (y, m, d))

let prop_value_date_add_days_consistent =
  QCheck.Test.make ~name:"add_days shifts the day number" ~count:200
    QCheck.(pair (int_range 0 20000) (int_range (-500) 500))
    (fun (base, delta) ->
      match Value.add_days (Value.Date base) delta with
      | Value.Date d -> d = base + delta
      | _ -> false)

let test_value_pp () =
  Alcotest.(check string) "date format" "1997-07-01"
    (Value.to_string (Value.date_of_ymd ~year:1997 ~month:7 ~day:1));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "string quoted" "\"hi\"" (Value.to_string (Value.String "hi"))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let sample_schema =
  Schema.create
    [
      { Schema.name = "id"; ty = Value.T_int };
      { Schema.name = "name"; ty = Value.T_string };
      { Schema.name = "born"; ty = Value.T_date };
    ]

let test_schema_basics () =
  check_int "arity" 3 (Schema.arity sample_schema);
  check_int "index_of" 1 (Schema.index_of sample_schema "name");
  check_bool "mem" true (Schema.mem sample_schema "born");
  check_bool "not mem" false (Schema.mem sample_schema "age");
  Alcotest.check_raises "unknown column" Not_found (fun () ->
      ignore (Schema.index_of sample_schema "age"))

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.create: duplicate column \"id\"") (fun () ->
      ignore
        (Schema.create
           [ { Schema.name = "id"; ty = Value.T_int }; { Schema.name = "id"; ty = Value.T_int } ]))

let test_schema_project () =
  let p = Schema.project sample_schema [ "born"; "id" ] in
  check_int "projected arity" 2 (Schema.arity p);
  check_int "order preserved" 0 (Schema.index_of p "born")

let test_schema_qualify () =
  let q = Schema.qualify "t" sample_schema in
  check_bool "qualified" true (Schema.mem q "t.id");
  (* Qualifying twice must not double the prefix. *)
  let qq = Schema.qualify "u" q in
  check_bool "idempotent on dotted names" true (Schema.mem qq "t.id")

let test_schema_row_bytes () =
  check_int "8 + 20 + 4" 32 (Schema.row_bytes sample_schema)

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

let small_relation =
  Relation.create ~name:"people" ~schema:sample_schema
    (Array.init 10 (fun i ->
         [| v_int i; Value.String (Printf.sprintf "p%d" i); Value.Date (1000 + i) |]))

let test_relation_basics () =
  check_int "row count" 10 (Relation.row_count small_relation);
  check_bool "rows per page positive" true (Relation.rows_per_page small_relation > 0);
  check_int "page count" 1 (Relation.page_count small_relation);
  Alcotest.(check string) "get" "p3"
    (match (Relation.get small_relation 3).(1) with Value.String s -> s | _ -> "?")

let test_relation_arity_mismatch () =
  Alcotest.check_raises "bad tuple"
    (Invalid_argument "Relation.create bad: tuple 0 has arity 1, schema has 3") (fun () ->
      ignore (Relation.create ~name:"bad" ~schema:sample_schema [| [| v_int 1 |] |]))

let test_relation_get_bounds () =
  Alcotest.check_raises "rid out of range"
    (Invalid_argument "Relation.get people: rid 99 out of range") (fun () ->
      ignore (Relation.get small_relation 99))

let test_relation_page_geometry () =
  (* 32-byte rows: 256 rows per 8KiB page. *)
  check_int "rows per page" 256 (Relation.rows_per_page small_relation);
  let big =
    Relation.create ~name:"big" ~schema:sample_schema
      (Array.init 1000 (fun i -> [| v_int i; Value.String "x"; Value.Date i |]))
  in
  check_int "1000 rows -> 4 pages" 4 (Relation.page_count big)

let test_relation_fold_filter () =
  check_int "filter_count" 5
    (Relation.filter_count small_relation (fun tup ->
         match tup.(0) with Value.Int i -> i mod 2 = 0 | _ -> false));
  check_int "fold sums rids" 45 (Relation.fold (fun acc rid _ -> acc + rid) 0 small_relation)

(* ------------------------------------------------------------------ *)
(* Rid_set                                                             *)
(* ------------------------------------------------------------------ *)

let test_rid_set_dedup () =
  let s = Rid_set.of_unsorted [| 5; 1; 5; 3; 1 |] in
  Alcotest.(check (array int)) "sorted unique" [| 1; 3; 5 |] (Rid_set.to_array s);
  check_int "cardinality" 3 (Rid_set.cardinality s)

let test_rid_set_mem () =
  let s = Rid_set.of_unsorted [| 2; 4; 6; 8 |] in
  check_bool "present" true (Rid_set.mem s 6);
  check_bool "absent" false (Rid_set.mem s 5);
  check_bool "empty" false (Rid_set.mem Rid_set.empty 0)

let sorted_unique xs = List.sort_uniq compare xs

let prop_rid_set_inter =
  QCheck.Test.make ~name:"intersection matches reference" ~count:300
    QCheck.(pair (list (int_range 0 50)) (list (int_range 0 50)))
    (fun (xs, ys) ->
      let a = Rid_set.of_unsorted (Array.of_list xs) in
      let b = Rid_set.of_unsorted (Array.of_list ys) in
      let expected =
        List.filter (fun x -> List.mem x (sorted_unique ys)) (sorted_unique xs)
      in
      Array.to_list (Rid_set.to_array (Rid_set.inter a b)) = expected)

let prop_rid_set_union =
  QCheck.Test.make ~name:"union matches reference" ~count:300
    QCheck.(pair (list (int_range 0 50)) (list (int_range 0 50)))
    (fun (xs, ys) ->
      let a = Rid_set.of_unsorted (Array.of_list xs) in
      let b = Rid_set.of_unsorted (Array.of_list ys) in
      Array.to_list (Rid_set.to_array (Rid_set.union a b)) = sorted_unique (xs @ ys))

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let indexed_relation values =
  let schema =
    Schema.create [ { Schema.name = "k"; ty = Value.T_int }; { Schema.name = "payload"; ty = Value.T_int } ]
  in
  Relation.create ~name:"t" ~schema
    (Array.mapi (fun i v -> [| v; v_int i |]) (Array.of_list values))

let reference_range rel ~lo ~hi =
  Relation.fold
    (fun acc rid tup ->
      let v = tup.(0) in
      if Value.is_null v then acc
      else
        let ge_lo = match lo with Some l -> Value.compare v l >= 0 | None -> true in
        let le_hi = match hi with Some h -> Value.compare v h <= 0 | None -> true in
        if ge_lo && le_hi then rid :: acc else acc)
    [] rel
  |> List.rev

let test_index_probe_eq () =
  let rel = indexed_relation [ v_int 5; v_int 3; v_int 5; Value.Null; v_int 7 ] in
  let idx = Index.build rel "k" in
  Alcotest.(check (array int)) "duplicates found" [| 0; 2 |]
    (Rid_set.to_array (Index.probe_eq idx (v_int 5)));
  check_int "missing key" 0 (Rid_set.cardinality (Index.probe_eq idx (v_int 4)))

let test_index_range_nulls () =
  let rel = indexed_relation [ Value.Null; v_int 1; v_int 2; Value.Null; v_int 3 ] in
  let idx = Index.build rel "k" in
  (* Open range must skip nulls. *)
  check_int "full open range" 3 (Index.probe_range_count idx ~lo:None ~hi:None);
  Alcotest.(check (option (pair int int))) "min key ignores nulls"
    (Some (1, 1))
    (match Index.min_key idx with Some (Value.Int i) -> Some (i, i) | _ -> None)

let prop_index_range_matches_scan =
  QCheck.Test.make ~name:"index range probe matches a filtered scan" ~count:200
    QCheck.(triple (list (int_range 0 30)) (int_range 0 30) (int_range 0 30))
    (fun (keys, b1, b2) ->
      QCheck.assume (keys <> []);
      let rel = indexed_relation (List.map v_int keys) in
      let idx = Index.build rel "k" in
      let lo = Some (v_int (min b1 b2)) and hi = Some (v_int (max b1 b2)) in
      let got = Array.to_list (Rid_set.to_array (Index.probe_range idx ~lo ~hi)) in
      let expected = List.sort compare (reference_range rel ~lo ~hi) in
      got = expected && Index.probe_range_count idx ~lo ~hi = List.length expected)

let test_index_leaf_pages () =
  let rel = indexed_relation (List.init 5000 v_int) in
  let idx = Index.build rel "k" in
  check_bool "leaf pages positive" true (Index.leaf_page_count idx > 0);
  check_int "entry count" 5000 (Index.entry_count idx)

(* ------------------------------------------------------------------ *)
(* Csv                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_parse_basic () =
  (match Csv.parse "a,b,c\n1,2,3\n" with
  | Ok [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ] -> ()
  | _ -> Alcotest.fail "basic rows");
  match Csv.parse "x" with
  | Ok [ [ "x" ] ] -> ()
  | _ -> Alcotest.fail "no trailing newline"

let test_csv_quoting () =
  (match Csv.parse "\"a,b\",\"he said \"\"hi\"\"\",\"two\nlines\"\n" with
  | Ok [ [ "a,b"; "he said \"hi\""; "two\nlines" ] ] -> ()
  | Ok other ->
      Alcotest.failf "got %s" (String.concat "|" (List.concat other))
  | Error e -> Alcotest.fail e);
  check_bool "unterminated quote" true (Result.is_error (Csv.parse "\"oops"));
  check_bool "stray quote" true (Result.is_error (Csv.parse "ab\"cd"))

let test_csv_crlf_and_blank_lines () =
  match Csv.parse "a,b\r\n\r\nc,d\r\n" with
  | Ok [ [ "a"; "b" ]; [ "c"; "d" ] ] -> ()
  | _ -> Alcotest.fail "CRLF + blank line"

let prop_csv_roundtrip =
  let field_gen =
    QCheck.Gen.(oneof [ string_size (int_range 0 8); return "a,b"; return "q\"q"; return "x\ny" ])
  in
  QCheck.Test.make ~name:"render/parse roundtrip" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 4) (make field_gen)))
    (fun rows ->
      (* Rows of entirely-empty trailing fields are ambiguous with blank
         lines; skip degenerate all-empty rows. *)
      QCheck.assume (List.for_all (fun r -> List.exists (fun f -> f <> "") r) rows);
      match Csv.parse (Csv.render rows) with Ok parsed -> parsed = rows | Error _ -> false)

let test_csv_typed_conversion () =
  let schema =
    Schema.create
      [
        { Schema.name = "i"; ty = Value.T_int };
        { Schema.name = "f"; ty = Value.T_float };
        { Schema.name = "s"; ty = Value.T_string };
        { Schema.name = "d"; ty = Value.T_date };
        { Schema.name = "b"; ty = Value.T_bool };
      ]
  in
  (match Csv.tuple_of_fields schema [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ] with
  | Ok [| Value.Int 7; Value.Float 2.5; Value.String "hi"; Value.Date _; Value.Bool true |] -> ()
  | Ok _ -> Alcotest.fail "wrong values"
  | Error e -> Alcotest.fail e);
  (match Csv.tuple_of_fields schema [ ""; ""; ""; ""; "" ] with
  | Ok tuple -> check_bool "empty fields are NULL" true (Array.for_all Value.is_null tuple)
  | Error e -> Alcotest.fail e);
  check_bool "bad int" true (Result.is_error (Csv.tuple_of_fields schema [ "x"; "1"; "a"; "1997-01-01"; "t" ]));
  check_bool "bad arity" true (Result.is_error (Csv.tuple_of_fields schema [ "1" ]));
  (* fields_of_tuple inverts. *)
  match Csv.tuple_of_fields schema [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ] with
  | Ok tuple ->
      Alcotest.(check (list string)) "inverse" [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ]
        (Csv.fields_of_tuple tuple)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let two_table_catalog () =
  let parent_schema =
    Schema.create [ { Schema.name = "pk"; ty = Value.T_int }; { Schema.name = "label"; ty = Value.T_string } ]
  in
  let child_schema =
    Schema.create [ { Schema.name = "id"; ty = Value.T_int }; { Schema.name = "fk"; ty = Value.T_int } ]
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"pk"
    (Relation.create ~name:"parent" ~schema:parent_schema
       (Array.init 3 (fun i -> [| v_int i; Value.String "x" |])));
  Catalog.add_table catalog ~primary_key:"id"
    (Relation.create ~name:"child" ~schema:child_schema
       (Array.init 6 (fun i -> [| v_int i; v_int (i mod 3) |])));
  catalog

let test_catalog_tables () =
  let catalog = two_table_catalog () in
  Alcotest.(check (list string)) "names sorted" [ "child"; "parent" ] (Catalog.table_names catalog);
  Alcotest.(check (option string)) "pk" (Some "pk") (Catalog.primary_key catalog "parent");
  Alcotest.(check (option string)) "clustering defaults to pk" (Some "pk")
    (Catalog.clustered_by catalog "parent");
  check_bool "find_opt none" true (Catalog.find_table_opt catalog "nope" = None);
  Alcotest.check_raises "find raises" Not_found (fun () ->
      ignore (Catalog.find_table catalog "nope"))

let test_catalog_duplicate_table () =
  let catalog = two_table_catalog () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Catalog.add_table: duplicate table \"parent\"")
    (fun () ->
      Catalog.add_table catalog
        (Relation.create ~name:"parent"
           ~schema:(Schema.create [ { Schema.name = "a"; ty = Value.T_int } ])
           [||]))

let test_catalog_fk_validation () =
  let catalog = two_table_catalog () in
  (* Referencing a non-PK column must fail. *)
  Alcotest.check_raises "non-pk target"
    (Invalid_argument "Catalog.add_foreign_key: parent.label is not the primary key of parent")
    (fun () ->
      Catalog.add_foreign_key catalog
        { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "label" });
  Catalog.add_foreign_key catalog
    { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "pk" };
  check_int "fk registered" 1 (List.length (Catalog.foreign_keys_from catalog "child"));
  check_int "incoming fk" 1 (List.length (Catalog.foreign_keys_into catalog "parent"));
  check_bool "edge lookup" true
    (Catalog.fk_edge catalog ~from_table:"child" ~to_table:"parent" <> None)

let test_catalog_fk_cycle () =
  let catalog = Catalog.create () in
  let schema table_pk fk_col =
    Schema.create
      [ { Schema.name = table_pk; ty = Value.T_int }; { Schema.name = fk_col; ty = Value.T_int } ]
  in
  Catalog.add_table catalog ~primary_key:"a_pk"
    (Relation.create ~name:"a" ~schema:(schema "a_pk" "a_fk") [||]);
  Catalog.add_table catalog ~primary_key:"b_pk"
    (Relation.create ~name:"b" ~schema:(schema "b_pk" "b_fk") [||]);
  Catalog.add_foreign_key catalog
    { from_table = "a"; from_column = "a_fk"; to_table = "b"; to_column = "b_pk" };
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Catalog.add_foreign_key: edge b -> a would create a cycle") (fun () ->
      Catalog.add_foreign_key catalog
        { from_table = "b"; from_column = "b_fk"; to_table = "a"; to_column = "a_pk" })

let test_catalog_indexes () =
  let catalog = two_table_catalog () in
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  check_bool "index exists" true (Catalog.find_index catalog ~table:"child" ~column:"fk" <> None);
  check_int "idempotent build" 1 (List.length (Catalog.indexes_on catalog "child"))

let test_catalog_replace_table () =
  let catalog = two_table_catalog () in
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  let child = Catalog.find_table catalog "child" in
  (* Double the child rows; the registered index must see the new heap. *)
  let doubled =
    Array.init (2 * Relation.row_count child) (fun i -> [| v_int i; v_int (i mod 3) |])
  in
  Catalog.replace_table catalog
    (Relation.create ~name:"child" ~schema:(Relation.schema child) doubled);
  check_int "rows replaced" 12 (Relation.row_count (Catalog.find_table catalog "child"));
  (match Catalog.find_index catalog ~table:"child" ~column:"fk" with
  | Some idx -> check_int "index rebuilt" 12 (Index.entry_count idx)
  | None -> Alcotest.fail "index lost");
  check_bool "unknown table rejected" true
    (try
       Catalog.replace_table catalog
         (Relation.create ~name:"ghost"
            ~schema:(Schema.create [ { Schema.name = "x"; ty = Value.T_int } ])
            [||]);
       false
     with Invalid_argument _ -> true);
  check_bool "schema change rejected" true
    (try
       Catalog.replace_table catalog
         (Relation.create ~name:"child"
            ~schema:(Schema.create [ { Schema.name = "x"; ty = Value.T_int } ])
            [||]);
       false
     with Invalid_argument _ -> true)

let test_catalog_reachability () =
  let catalog = two_table_catalog () in
  Catalog.add_foreign_key catalog
    { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "pk" };
  Alcotest.(check (list string)) "reachable from child" [ "child"; "parent" ]
    (Catalog.reachable_via_fk catalog "child");
  Alcotest.(check (list string)) "parent reaches only itself" [ "parent" ]
    (Catalog.reachable_via_fk catalog "parent")

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rq_storage"
    [
      ( "value",
        [
          Alcotest.test_case "cross-type ordering" `Quick test_value_ordering;
          Alcotest.test_case "numeric cross compare" `Quick test_value_numeric_cross_compare;
          Alcotest.test_case "to_float" `Quick test_value_to_float;
          Alcotest.test_case "date known values" `Quick test_value_date_known;
          Alcotest.test_case "printing" `Quick test_value_pp;
        ]
        @ qcheck [ prop_value_date_roundtrip; prop_value_date_add_days_consistent ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate;
          Alcotest.test_case "project" `Quick test_schema_project;
          Alcotest.test_case "qualify" `Quick test_schema_qualify;
          Alcotest.test_case "row bytes" `Quick test_schema_row_bytes;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
          Alcotest.test_case "get bounds" `Quick test_relation_get_bounds;
          Alcotest.test_case "page geometry" `Quick test_relation_page_geometry;
          Alcotest.test_case "fold and filter" `Quick test_relation_fold_filter;
        ] );
      ( "rid_set",
        [
          Alcotest.test_case "dedup" `Quick test_rid_set_dedup;
          Alcotest.test_case "mem" `Quick test_rid_set_mem;
        ]
        @ qcheck [ prop_rid_set_inter; prop_rid_set_union ] );
      ( "index",
        [
          Alcotest.test_case "probe_eq with duplicates" `Quick test_index_probe_eq;
          Alcotest.test_case "ranges skip nulls" `Quick test_index_range_nulls;
          Alcotest.test_case "leaf pages" `Quick test_index_leaf_pages;
        ]
        @ qcheck [ prop_index_range_matches_scan ] );
      ( "csv",
        [
          Alcotest.test_case "basic parsing" `Quick test_csv_parse_basic;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "CRLF and blank lines" `Quick test_csv_crlf_and_blank_lines;
          Alcotest.test_case "typed conversion" `Quick test_csv_typed_conversion;
        ]
        @ qcheck [ prop_csv_roundtrip ] );
      ( "catalog",
        [
          Alcotest.test_case "tables" `Quick test_catalog_tables;
          Alcotest.test_case "duplicate table" `Quick test_catalog_duplicate_table;
          Alcotest.test_case "fk validation" `Quick test_catalog_fk_validation;
          Alcotest.test_case "fk cycle rejected" `Quick test_catalog_fk_cycle;
          Alcotest.test_case "indexes" `Quick test_catalog_indexes;
          Alcotest.test_case "replace table" `Quick test_catalog_replace_table;
          Alcotest.test_case "fk reachability" `Quick test_catalog_reachability;
        ] );
    ]
