(* Unit and property tests for rq_storage: values, schemas, relations, RID
   sets, indexes, catalog. *)

open Rq_storage

let v_int i = Value.Int i
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_ordering () =
  check_bool "null < bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  check_bool "bool < int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  check_bool "int < string" true (Value.compare (Value.Int 99) (Value.String "a") < 0);
  check_bool "string < date" true (Value.compare (Value.String "zzz") (Value.Date 0) < 0);
  check_int "int ordering" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  check_int "string ordering" 1 (Value.compare (Value.String "b") (Value.String "a"))

let test_value_numeric_cross_compare () =
  check_int "Int = Float" 0 (Value.compare (Value.Int 3) (Value.Float 3.0));
  check_bool "Int < Float" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  check_bool "Float > Int" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0)

let test_value_to_float () =
  Alcotest.(check (float 0.0)) "int" 5.0 (Value.to_float (Value.Int 5));
  Alcotest.(check (float 0.0)) "bool" 1.0 (Value.to_float (Value.Bool true));
  Alcotest.check_raises "string" (Invalid_argument "Value.to_float: String") (fun () ->
      ignore (Value.to_float (Value.String "x")));
  Alcotest.check_raises "null" (Invalid_argument "Value.to_float: Null") (fun () ->
      ignore (Value.to_float Value.Null))

let test_value_date_known () =
  (* 1970-01-01 is day 0; 2000-03-01 is day 11017. *)
  check_int "epoch" 0
    (match Value.date_of_ymd ~year:1970 ~month:1 ~day:1 with Value.Date d -> d | _ -> -1);
  check_int "2000-03-01" 11017
    (match Value.date_of_ymd ~year:2000 ~month:3 ~day:1 with Value.Date d -> d | _ -> -1);
  Alcotest.(check (triple int int int)) "roundtrip"
    (1997, 7, 1)
    (Value.ymd_of_date (Value.date_of_ymd ~year:1997 ~month:7 ~day:1))

let prop_value_date_roundtrip =
  QCheck.Test.make ~name:"date ymd roundtrip over 400 years" ~count:500
    QCheck.(triple (int_range 1900 2299) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let date = Value.date_of_ymd ~year:y ~month:m ~day:d in
      Value.ymd_of_date date = (y, m, d))

let prop_value_date_add_days_consistent =
  QCheck.Test.make ~name:"add_days shifts the day number" ~count:200
    QCheck.(pair (int_range 0 20000) (int_range (-500) 500))
    (fun (base, delta) ->
      match Value.add_days (Value.Date base) delta with
      | Value.Date d -> d = base + delta
      | _ -> false)

let test_value_pp () =
  Alcotest.(check string) "date format" "1997-07-01"
    (Value.to_string (Value.date_of_ymd ~year:1997 ~month:7 ~day:1));
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "string quoted" "\"hi\"" (Value.to_string (Value.String "hi"))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let sample_schema =
  Schema.create
    [
      { Schema.name = "id"; ty = Value.T_int };
      { Schema.name = "name"; ty = Value.T_string };
      { Schema.name = "born"; ty = Value.T_date };
    ]

let test_schema_basics () =
  check_int "arity" 3 (Schema.arity sample_schema);
  check_int "index_of" 1 (Schema.index_of sample_schema "name");
  check_bool "mem" true (Schema.mem sample_schema "born");
  check_bool "not mem" false (Schema.mem sample_schema "age");
  Alcotest.check_raises "unknown column" Not_found (fun () ->
      ignore (Schema.index_of sample_schema "age"))

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.create: duplicate column \"id\"") (fun () ->
      ignore
        (Schema.create
           [ { Schema.name = "id"; ty = Value.T_int }; { Schema.name = "id"; ty = Value.T_int } ]))

let test_schema_project () =
  let p = Schema.project sample_schema [ "born"; "id" ] in
  check_int "projected arity" 2 (Schema.arity p);
  check_int "order preserved" 0 (Schema.index_of p "born")

let test_schema_qualify () =
  let q = Schema.qualify "t" sample_schema in
  check_bool "qualified" true (Schema.mem q "t.id");
  (* Qualifying twice must not double the prefix. *)
  let qq = Schema.qualify "u" q in
  check_bool "idempotent on dotted names" true (Schema.mem qq "t.id")

let test_schema_row_bytes () =
  check_int "8 + 20 + 4" 32 (Schema.row_bytes sample_schema)

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

let small_relation =
  Relation.create ~name:"people" ~schema:sample_schema
    (Array.init 10 (fun i ->
         [| v_int i; Value.String (Printf.sprintf "p%d" i); Value.Date (1000 + i) |]))

let test_relation_basics () =
  check_int "row count" 10 (Relation.row_count small_relation);
  check_bool "rows per page positive" true (Relation.rows_per_page small_relation > 0);
  check_int "page count" 1 (Relation.page_count small_relation);
  Alcotest.(check string) "get" "p3"
    (match (Relation.get small_relation 3).(1) with Value.String s -> s | _ -> "?")

let test_relation_arity_mismatch () =
  Alcotest.check_raises "bad tuple"
    (Invalid_argument "Relation.create bad: tuple 0 has arity 1, schema has 3") (fun () ->
      ignore (Relation.create ~name:"bad" ~schema:sample_schema [| [| v_int 1 |] |]))

let test_relation_get_bounds () =
  Alcotest.check_raises "rid out of range"
    (Invalid_argument "Relation.get people: rid 99 out of range") (fun () ->
      ignore (Relation.get small_relation 99))

let test_relation_page_geometry () =
  (* 32-byte rows: 256 rows per 8KiB page. *)
  check_int "rows per page" 256 (Relation.rows_per_page small_relation);
  let big =
    Relation.create ~name:"big" ~schema:sample_schema
      (Array.init 1000 (fun i -> [| v_int i; Value.String "x"; Value.Date i |]))
  in
  check_int "1000 rows -> 4 pages" 4 (Relation.page_count big)

let test_relation_fold_filter () =
  check_int "filter_count" 5
    (Relation.filter_count small_relation (fun tup ->
         match tup.(0) with Value.Int i -> i mod 2 = 0 | _ -> false));
  check_int "fold sums rids" 45 (Relation.fold (fun acc rid _ -> acc + rid) 0 small_relation)

(* ------------------------------------------------------------------ *)
(* Rid_set                                                             *)
(* ------------------------------------------------------------------ *)

let test_rid_set_dedup () =
  let s = Rid_set.of_unsorted [| 5; 1; 5; 3; 1 |] in
  Alcotest.(check (array int)) "sorted unique" [| 1; 3; 5 |] (Rid_set.to_array s);
  check_int "cardinality" 3 (Rid_set.cardinality s)

let test_rid_set_mem () =
  let s = Rid_set.of_unsorted [| 2; 4; 6; 8 |] in
  check_bool "present" true (Rid_set.mem s 6);
  check_bool "absent" false (Rid_set.mem s 5);
  check_bool "empty" false (Rid_set.mem Rid_set.empty 0)

let sorted_unique xs = List.sort_uniq compare xs

let prop_rid_set_inter =
  QCheck.Test.make ~name:"intersection matches reference" ~count:300
    QCheck.(pair (list (int_range 0 50)) (list (int_range 0 50)))
    (fun (xs, ys) ->
      let a = Rid_set.of_unsorted (Array.of_list xs) in
      let b = Rid_set.of_unsorted (Array.of_list ys) in
      let expected =
        List.filter (fun x -> List.mem x (sorted_unique ys)) (sorted_unique xs)
      in
      Array.to_list (Rid_set.to_array (Rid_set.inter a b)) = expected)

let prop_rid_set_union =
  QCheck.Test.make ~name:"union matches reference" ~count:300
    QCheck.(pair (list (int_range 0 50)) (list (int_range 0 50)))
    (fun (xs, ys) ->
      let a = Rid_set.of_unsorted (Array.of_list xs) in
      let b = Rid_set.of_unsorted (Array.of_list ys) in
      Array.to_list (Rid_set.to_array (Rid_set.union a b)) = sorted_unique (xs @ ys))

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let indexed_relation values =
  let schema =
    Schema.create [ { Schema.name = "k"; ty = Value.T_int }; { Schema.name = "payload"; ty = Value.T_int } ]
  in
  Relation.create ~name:"t" ~schema
    (Array.mapi (fun i v -> [| v; v_int i |]) (Array.of_list values))

let reference_range rel ~lo ~hi =
  Relation.fold
    (fun acc rid tup ->
      let v = tup.(0) in
      if Value.is_null v then acc
      else
        let ge_lo = match lo with Some l -> Value.compare v l >= 0 | None -> true in
        let le_hi = match hi with Some h -> Value.compare v h <= 0 | None -> true in
        if ge_lo && le_hi then rid :: acc else acc)
    [] rel
  |> List.rev

let test_index_probe_eq () =
  let rel = indexed_relation [ v_int 5; v_int 3; v_int 5; Value.Null; v_int 7 ] in
  let idx = Index.build rel "k" in
  Alcotest.(check (array int)) "duplicates found" [| 0; 2 |]
    (Rid_set.to_array (Index.probe_eq idx (v_int 5)));
  check_int "missing key" 0 (Rid_set.cardinality (Index.probe_eq idx (v_int 4)))

let test_index_range_nulls () =
  let rel = indexed_relation [ Value.Null; v_int 1; v_int 2; Value.Null; v_int 3 ] in
  let idx = Index.build rel "k" in
  (* Open range must skip nulls. *)
  check_int "full open range" 3 (Index.probe_range_count idx ~lo:None ~hi:None);
  Alcotest.(check (option (pair int int))) "min key ignores nulls"
    (Some (1, 1))
    (match Index.min_key idx with Some (Value.Int i) -> Some (i, i) | _ -> None)

let prop_index_range_matches_scan =
  QCheck.Test.make ~name:"index range probe matches a filtered scan" ~count:200
    QCheck.(triple (list (int_range 0 30)) (int_range 0 30) (int_range 0 30))
    (fun (keys, b1, b2) ->
      QCheck.assume (keys <> []);
      let rel = indexed_relation (List.map v_int keys) in
      let idx = Index.build rel "k" in
      let lo = Some (v_int (min b1 b2)) and hi = Some (v_int (max b1 b2)) in
      let got = Array.to_list (Rid_set.to_array (Index.probe_range idx ~lo ~hi)) in
      let expected = List.sort compare (reference_range rel ~lo ~hi) in
      got = expected && Index.probe_range_count idx ~lo ~hi = List.length expected)

let test_index_leaf_pages () =
  let rel = indexed_relation (List.init 5000 v_int) in
  let idx = Index.build rel "k" in
  check_bool "leaf pages positive" true (Index.leaf_page_count idx > 0);
  check_int "entry count" 5000 (Index.entry_count idx)

(* ------------------------------------------------------------------ *)
(* Csv                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_parse_basic () =
  (match Csv.parse "a,b,c\n1,2,3\n" with
  | Ok [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ] -> ()
  | _ -> Alcotest.fail "basic rows");
  match Csv.parse "x" with
  | Ok [ [ "x" ] ] -> ()
  | _ -> Alcotest.fail "no trailing newline"

let test_csv_quoting () =
  (match Csv.parse "\"a,b\",\"he said \"\"hi\"\"\",\"two\nlines\"\n" with
  | Ok [ [ "a,b"; "he said \"hi\""; "two\nlines" ] ] -> ()
  | Ok other ->
      Alcotest.failf "got %s" (String.concat "|" (List.concat other))
  | Error e -> Alcotest.fail e);
  check_bool "unterminated quote" true (Result.is_error (Csv.parse "\"oops"));
  check_bool "stray quote" true (Result.is_error (Csv.parse "ab\"cd"))

let test_csv_crlf_and_blank_lines () =
  match Csv.parse "a,b\r\n\r\nc,d\r\n" with
  | Ok [ [ "a"; "b" ]; [ "c"; "d" ] ] -> ()
  | _ -> Alcotest.fail "CRLF + blank line"

let prop_csv_roundtrip =
  let field_gen =
    QCheck.Gen.(oneof [ string_size (int_range 0 8); return "a,b"; return "q\"q"; return "x\ny" ])
  in
  QCheck.Test.make ~name:"render/parse roundtrip" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 4) (make field_gen)))
    (fun rows ->
      (* Rows of entirely-empty trailing fields are ambiguous with blank
         lines; skip degenerate all-empty rows. *)
      QCheck.assume (List.for_all (fun r -> List.exists (fun f -> f <> "") r) rows);
      match Csv.parse (Csv.render rows) with Ok parsed -> parsed = rows | Error _ -> false)

let test_csv_typed_conversion () =
  let schema =
    Schema.create
      [
        { Schema.name = "i"; ty = Value.T_int };
        { Schema.name = "f"; ty = Value.T_float };
        { Schema.name = "s"; ty = Value.T_string };
        { Schema.name = "d"; ty = Value.T_date };
        { Schema.name = "b"; ty = Value.T_bool };
      ]
  in
  (match Csv.tuple_of_fields schema [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ] with
  | Ok [| Value.Int 7; Value.Float 2.5; Value.String "hi"; Value.Date _; Value.Bool true |] -> ()
  | Ok _ -> Alcotest.fail "wrong values"
  | Error e -> Alcotest.fail e);
  (match Csv.tuple_of_fields schema [ ""; ""; ""; ""; "" ] with
  | Ok tuple -> check_bool "empty fields are NULL" true (Array.for_all Value.is_null tuple)
  | Error e -> Alcotest.fail e);
  check_bool "bad int" true (Result.is_error (Csv.tuple_of_fields schema [ "x"; "1"; "a"; "1997-01-01"; "t" ]));
  check_bool "bad arity" true (Result.is_error (Csv.tuple_of_fields schema [ "1" ]));
  (* fields_of_tuple inverts. *)
  match Csv.tuple_of_fields schema [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ] with
  | Ok tuple ->
      Alcotest.(check (list string)) "inverse" [ "7"; "2.5"; "hi"; "1997-07-01"; "true" ]
        (Csv.fields_of_tuple tuple)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Page geometry                                                       *)
(* ------------------------------------------------------------------ *)

let test_page_geometry () =
  check_int "8 KiB pages" 8192 Page.size_bytes;
  check_int "Relation re-exports the constant" Page.size_bytes Relation.page_size_bytes;
  check_int "32-byte rows -> 256 per page" 256 (Page.rows_per_page sample_schema);
  check_int "16 pages per chunk" 16 Page.pages_per_chunk;
  check_int "rows per chunk" (16 * 256) (Page.rows_per_chunk sample_schema);
  (* Very wide rows still fit one per page. *)
  let wide =
    Schema.create (List.init 2000 (fun i -> { Schema.name = Printf.sprintf "c%d" i; ty = Value.T_int }))
  in
  check_int "wide rows clamp to 1" 1 (Page.rows_per_page wide)

(* ------------------------------------------------------------------ *)
(* Chunk and Zone_map                                                  *)
(* ------------------------------------------------------------------ *)

let test_chunk_roundtrip () =
  let rows = Array.init 7 (fun i -> [| v_int i; Value.String (string_of_int i); Value.Date i |]) in
  let chunk = Chunk.of_tuples rows in
  check_int "rows" 7 (Chunk.n_rows chunk);
  check_int "columns" 3 (Chunk.n_columns chunk);
  check_bool "get materializes the row" true (Chunk.get chunk 3 = rows.(3));
  check_bool "value addresses column-major" true (Chunk.value chunk ~col:2 ~row:5 = Value.Date 5);
  let seen = ref [] in
  Chunk.iter (fun r tup -> seen := (r, tup.(0)) :: !seen) chunk;
  check_bool "iter in order" true
    (List.rev !seen = List.init 7 (fun i -> (i, v_int i)));
  (* of_rows builds the same chunk without a row-major copy. *)
  let chunk' = Chunk.of_rows ~arity:3 (fun r c -> rows.(r).(c)) 7 in
  check_bool "of_rows agrees" true
    (Array.init 7 (Chunk.get chunk') = Array.init 7 (Chunk.get chunk))

let test_zone_map_stats () =
  let rows =
    [|
      [| v_int 5; Value.Null; Value.Null |];
      [| v_int (-2); Value.String "m"; Value.Null |];
      [| v_int 9; Value.String "a"; Value.Null |];
    |]
  in
  let zm = Zone_map.of_chunk (Chunk.of_tuples rows) in
  check_int "rows" 3 (Zone_map.n_rows zm);
  check_int "arity" 3 (Zone_map.arity zm);
  let c0 = Zone_map.column zm 0 in
  check_bool "int min/max" true (c0.Zone_map.lo = v_int (-2) && c0.hi = v_int 9);
  check_int "no nulls" 0 c0.nulls;
  let c1 = Zone_map.column zm 1 in
  check_bool "string min/max skip nulls" true
    (c1.Zone_map.lo = Value.String "a" && c1.hi = Value.String "m");
  check_int "one null" 1 c1.nulls;
  let c2 = Zone_map.column zm 2 in
  check_bool "all-null column is unconstrained" true
    (Value.is_null c2.Zone_map.lo && Value.is_null c2.hi);
  check_int "all rows null" 3 c2.nulls

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let tiny_chunk tag = Chunk.of_tuples [| [| v_int tag |] |]

let test_buffer_pool_hits_and_eviction () =
  (* 2 chunks of capacity (32 pages / 16 per chunk). *)
  let pool = Buffer_pool.create ~capacity_pages:32 () in
  let loads = ref 0 in
  let load tag () = incr loads; tiny_chunk tag in
  let pin k tag = Buffer_pool.pin pool ~key:k ~load:(load tag) in
  ignore (pin "a" 0);
  Buffer_pool.unpin pool ~key:"a";
  ignore (pin "a" 0);
  Buffer_pool.unpin pool ~key:"a";
  check_int "second pin was a hit" 1 !loads;
  ignore (pin "b" 1);
  Buffer_pool.unpin pool ~key:"b";
  ignore (pin "c" 2);
  Buffer_pool.unpin pool ~key:"c";
  (* a was least recently unpinned: inserting c at capacity evicted it. *)
  ignore (pin "a" 0);
  Buffer_pool.unpin pool ~key:"a";
  check_int "a was reloaded after eviction" 4 !loads;
  let s = Buffer_pool.stats pool in
  check_int "capacity in chunks" 2 s.Buffer_pool.capacity_chunks;
  check_int "hits" 1 s.hits;
  check_int "misses" 4 s.misses;
  check_bool "evictions happened" true (s.evictions >= 2);
  check_int "resident bounded by capacity" 2 s.resident_chunks;
  Alcotest.(check (float 1e-9)) "hit rate" 0.2 (Buffer_pool.hit_rate s)

let test_buffer_pool_pins_block_eviction () =
  let pool = Buffer_pool.create ~capacity_pages:16 () in
  (* capacity 1 chunk *)
  let a = Buffer_pool.pin pool ~key:"a" ~load:(fun () -> tiny_chunk 0) in
  (* While a is pinned, other chunks stream through without touching it. *)
  ignore (Buffer_pool.pin pool ~key:"b" ~load:(fun () -> tiny_chunk 1));
  Buffer_pool.unpin pool ~key:"b";
  let loads = ref 0 in
  let a' = Buffer_pool.pin pool ~key:"a" ~load:(fun () -> incr loads; tiny_chunk 9) in
  check_int "pinned chunk never faulted" 0 !loads;
  check_bool "same chunk back" true (a == a');
  Buffer_pool.unpin pool ~key:"a";
  Buffer_pool.unpin pool ~key:"a";
  check_bool "unpin of unpinned key raises" true
    (try Buffer_pool.unpin pool ~key:"a"; false with Invalid_argument _ -> true)

let test_buffer_pool_resize_and_reset () =
  let pool = Buffer_pool.create ~capacity_pages:64 () in
  for i = 0 to 3 do
    let k = Printf.sprintf "k%d" i in
    ignore (Buffer_pool.pin pool ~key:k ~load:(fun () -> tiny_chunk i));
    Buffer_pool.unpin pool ~key:k
  done;
  let before = Buffer_pool.stats pool in
  check_int "four resident" 4 before.Buffer_pool.resident_chunks;
  Buffer_pool.set_capacity_pages pool 16;
  let after = Buffer_pool.stats pool in
  check_int "resize drops unpinned chunks" 0 after.Buffer_pool.resident_chunks;
  check_int "resize keeps miss counter" before.misses after.misses;
  check_int "capacity floor is one chunk" 1
    (Buffer_pool.stats (Buffer_pool.create ~capacity_pages:3 ())).Buffer_pool.capacity_chunks;
  Buffer_pool.reset_stats pool;
  let zeroed = Buffer_pool.stats pool in
  check_int "reset zeroes hits" 0 zeroed.Buffer_pool.hits;
  check_int "reset zeroes misses" 0 zeroed.misses;
  check_int "reset zeroes evictions" 0 zeroed.evictions;
  Alcotest.(check (float 0.0)) "no traffic -> rate 0" 0.0 (Buffer_pool.hit_rate zeroed)

(* Scan resistance: chunks pinned only by sequential scans enter the LRU
   at the cold end, so one big sweep recycles a single slot instead of
   flushing the working set.  The hot chunk of a repeated small-table
   lookup must still be resident after a scan larger than the pool. *)
let test_buffer_pool_scan_resistance () =
  (* 3 chunks of capacity. *)
  let pool = Buffer_pool.create ~capacity_pages:48 () in
  let hot_loads = ref 0 in
  let pin_hot () =
    ignore
      (Buffer_pool.pin pool ~key:"hot" ~load:(fun () -> incr hot_loads; tiny_chunk 0));
    Buffer_pool.unpin pool ~key:"hot"
  in
  (* Point lookups (non-sequential pins): hot-end treatment. *)
  pin_hot ();
  pin_hot ();
  check_int "lookup chunk loaded once" 1 !hot_loads;
  (* A sequential sweep several times the pool size... *)
  for i = 0 to 9 do
    let k = Printf.sprintf "sweep%d" i in
    ignore (Buffer_pool.pin pool ~key:k ~load:(fun () -> tiny_chunk (100 + i)) ~seq:true);
    Buffer_pool.unpin pool ~key:k
  done;
  (* ...evicts its own cold-end predecessors, not the hot chunk. *)
  pin_hot ();
  check_int "lookup chunk survived the sweep" 1 !hot_loads;
  let s = Buffer_pool.stats pool in
  check_bool "sweep chunks recycled one slot" true (s.Buffer_pool.evictions >= 7);
  (* A single non-sequential pin permanently promotes a chunk: after a
     point lookup touches a sweep chunk, the next sweep evicts around it
     too. *)
  ignore (Buffer_pool.pin pool ~key:"sweep9" ~load:(fun () -> tiny_chunk 109));
  Buffer_pool.unpin pool ~key:"sweep9";
  let reloads = ref 0 in
  for i = 10 to 19 do
    let k = Printf.sprintf "sweep%d" i in
    ignore (Buffer_pool.pin pool ~key:k ~load:(fun () -> tiny_chunk (100 + i)) ~seq:true);
    Buffer_pool.unpin pool ~key:k
  done;
  ignore
    (Buffer_pool.pin pool ~key:"sweep9" ~load:(fun () -> incr reloads; tiny_chunk 109));
  Buffer_pool.unpin pool ~key:"sweep9";
  check_int "promoted chunk survived the next sweep" 0 !reloads

(* ------------------------------------------------------------------ *)
(* Relation builder (heap and spill)                                   *)
(* ------------------------------------------------------------------ *)

let builder_rows n =
  Array.init n (fun i ->
      [|
        v_int i;
        (if i mod 97 = 0 then Value.Null else Value.String (Printf.sprintf "r%d" i));
        Value.Date (i mod 400);
      |])

let check_same_relation label expected rel =
  check_int (label ^ ": row count") (Array.length expected) (Relation.row_count rel);
  Array.iteri
    (fun i row ->
      if Relation.get rel i <> row then Alcotest.failf "%s: row %d differs" label i)
    expected

let test_builder_heap_matches_create () =
  let rows = builder_rows 10_000 in
  let b = Relation.Builder.create ~name:"built" ~schema:sample_schema () in
  Array.iter (Relation.Builder.add_row b) rows;
  check_int "running count" 10_000 (Relation.Builder.row_count b);
  let rel = Relation.Builder.finish b in
  check_same_relation "heap" rows rel;
  (* Spans several chunks, each with a zone map. *)
  check_bool "several chunks" true (Relation.chunk_count rel > 1);
  let zm = Relation.zone_map rel 0 in
  let c0 = Zone_map.column zm 0 in
  check_bool "first chunk id range" true
    (c0.Zone_map.lo = v_int 0 && c0.hi = v_int (Relation.chunk_row_count rel 0 - 1))

let test_builder_spill_roundtrip () =
  let rows = builder_rows 12_345 in
  let b = Relation.Builder.create ~spill:true ~name:"spilled" ~schema:sample_schema () in
  Array.iter (Relation.Builder.add_row b) rows;
  let rel = Relation.Builder.finish b in
  check_same_relation "spill" rows rel;
  check_int "chunk starts tile the heap" (Array.length rows)
    (List.init (Relation.chunk_count rel) (Relation.chunk_row_count rel)
    |> List.fold_left ( + ) 0)

(* ------------------------------------------------------------------ *)
(* Streaming CSV reader                                                *)
(* ------------------------------------------------------------------ *)

let with_csv_channel text f =
  let path = Filename.temp_file "rq_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic))

let fold_rows_result text =
  with_csv_channel text (fun ic ->
      Csv.fold_rows ic ~init:[] (fun acc fields -> Ok (fields :: acc)))
  |> Result.map List.rev

let prop_csv_fold_rows_matches_parse =
  let doc_gen =
    QCheck.Gen.(
      oneof
        [
          map
            (fun rows -> Csv.render rows)
            (list_size (int_range 0 6)
               (list_size (int_range 1 4)
                  (oneof [ string_size (int_range 0 6); return "a,b"; return "q\"q"; return "x\ny" ])));
          (* Raw text, including malformed quoting: error parity matters too. *)
          string_size (int_range 0 40);
        ])
  in
  QCheck.Test.make ~name:"fold_rows sees exactly what parse sees" ~count:300
    (QCheck.make doc_gen) (fun text ->
      match (Csv.parse text, fold_rows_result text) with
      | Ok a, Ok b -> a = b
      | Error a, Error b -> a = b
      | _ -> false)

let test_csv_fold_rows_early_abort () =
  let result =
    with_csv_channel "a,b\nc,d\ne,f\n" (fun ic ->
        Csv.fold_rows ic ~init:0 (fun n _ -> if n = 1 then Error "stop" else Ok (n + 1)))
  in
  check_bool "callback error aborts the fold" true (result = Error "stop")

(* ------------------------------------------------------------------ *)
(* Zone-map pruning law                                                 *)
(* ------------------------------------------------------------------ *)

(* A skip decision must be justified: whenever [Prune.chunk_may_match]
   says no row can match, compiled row-at-a-time evaluation over the very
   same chunk finds no match either — across null-bearing data and the
   whole predicate grammar (including Not, Or, Between and Contains). *)

let prune_schema =
  Schema.create
    [
      { Schema.name = "a"; ty = Value.T_int };
      { Schema.name = "b"; ty = Value.T_int };
      { Schema.name = "s"; ty = Value.T_string };
    ]

let gen_prune_cell =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (6, map (fun i -> Value.Int i) (int_range (-20) 20));
      ])

let gen_prune_rows =
  QCheck.Gen.(
    list_size (int_range 1 24)
      (map2
         (fun ab s -> [| fst ab; snd ab; s |])
         (pair gen_prune_cell gen_prune_cell)
         (oneof
            [
              return Value.Null;
              map (fun i -> Value.String (Printf.sprintf "s%d" i)) (int_range 0 5);
            ])))

let gen_prune_pred =
  let open QCheck.Gen in
  let open Rq_exec in
  let expr = oneof [ return (Expr.col "a"); return (Expr.col "b"); map Expr.int (int_range (-25) 25) ] in
  let atom =
    oneof
      [
        map2 (fun c (l, r) -> Pred.Cmp (c, l, r))
          (oneofl [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])
          (pair expr expr);
        map2 (fun e (l, h) -> Pred.Between (e, Expr.int (min l h), Expr.int (max l h)))
          expr
          (pair (int_range (-25) 25) (int_range (-25) 25));
        map (fun i -> Pred.Contains (Expr.col "s", Printf.sprintf "s%d" i)) (int_range 0 6);
        oneofl [ Pred.True; Pred.False ];
      ]
  in
  let rec pred depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map (fun ps -> Pred.And ps) (list_size (int_range 1 3) (pred (depth - 1))));
          (1, map (fun ps -> Pred.Or ps) (list_size (int_range 1 3) (pred (depth - 1))));
          (1, map (fun p -> Pred.Not p) (pred (depth - 1)));
        ]
  in
  pred 2

let prop_zone_map_skip_is_sound =
  QCheck.Test.make ~name:"zone-map skip implies no matching row" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_prune_rows gen_prune_pred))
    (fun (rows, pred) ->
      let chunk = Chunk.of_tuples (Array.of_list rows) in
      let zm = Zone_map.of_chunk chunk in
      let may_match = Rq_exec.Prune.chunk_may_match prune_schema zm pred in
      let matcher = Rq_exec.Pred.compile prune_schema pred in
      let any_row_matches =
        let found = ref false in
        Chunk.iter (fun _ tup -> if matcher tup then found := true) chunk;
        !found
      in
      (* Soundness: a skip may never hide a matching row.  (Completeness is
         not required — may_match=true with zero matches is fine.) *)
      may_match || not any_row_matches)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let two_table_catalog () =
  let parent_schema =
    Schema.create [ { Schema.name = "pk"; ty = Value.T_int }; { Schema.name = "label"; ty = Value.T_string } ]
  in
  let child_schema =
    Schema.create [ { Schema.name = "id"; ty = Value.T_int }; { Schema.name = "fk"; ty = Value.T_int } ]
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"pk"
    (Relation.create ~name:"parent" ~schema:parent_schema
       (Array.init 3 (fun i -> [| v_int i; Value.String "x" |])));
  Catalog.add_table catalog ~primary_key:"id"
    (Relation.create ~name:"child" ~schema:child_schema
       (Array.init 6 (fun i -> [| v_int i; v_int (i mod 3) |])));
  catalog

let test_catalog_tables () =
  let catalog = two_table_catalog () in
  Alcotest.(check (list string)) "names sorted" [ "child"; "parent" ] (Catalog.table_names catalog);
  Alcotest.(check (option string)) "pk" (Some "pk") (Catalog.primary_key catalog "parent");
  Alcotest.(check (option string)) "clustering defaults to pk" (Some "pk")
    (Catalog.clustered_by catalog "parent");
  check_bool "find_opt none" true (Catalog.find_table_opt catalog "nope" = None);
  Alcotest.check_raises "find raises" Not_found (fun () ->
      ignore (Catalog.find_table catalog "nope"))

let test_catalog_duplicate_table () =
  let catalog = two_table_catalog () in
  Alcotest.check_raises "duplicate" (Invalid_argument "Catalog.add_table: duplicate table \"parent\"")
    (fun () ->
      Catalog.add_table catalog
        (Relation.create ~name:"parent"
           ~schema:(Schema.create [ { Schema.name = "a"; ty = Value.T_int } ])
           [||]))

let test_catalog_fk_validation () =
  let catalog = two_table_catalog () in
  (* Referencing a non-PK column must fail. *)
  Alcotest.check_raises "non-pk target"
    (Invalid_argument "Catalog.add_foreign_key: parent.label is not the primary key of parent")
    (fun () ->
      Catalog.add_foreign_key catalog
        { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "label" });
  Catalog.add_foreign_key catalog
    { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "pk" };
  check_int "fk registered" 1 (List.length (Catalog.foreign_keys_from catalog "child"));
  check_int "incoming fk" 1 (List.length (Catalog.foreign_keys_into catalog "parent"));
  check_bool "edge lookup" true
    (Catalog.fk_edge catalog ~from_table:"child" ~to_table:"parent" <> None)

let test_catalog_fk_cycle () =
  let catalog = Catalog.create () in
  let schema table_pk fk_col =
    Schema.create
      [ { Schema.name = table_pk; ty = Value.T_int }; { Schema.name = fk_col; ty = Value.T_int } ]
  in
  Catalog.add_table catalog ~primary_key:"a_pk"
    (Relation.create ~name:"a" ~schema:(schema "a_pk" "a_fk") [||]);
  Catalog.add_table catalog ~primary_key:"b_pk"
    (Relation.create ~name:"b" ~schema:(schema "b_pk" "b_fk") [||]);
  Catalog.add_foreign_key catalog
    { from_table = "a"; from_column = "a_fk"; to_table = "b"; to_column = "b_pk" };
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Catalog.add_foreign_key: edge b -> a would create a cycle") (fun () ->
      Catalog.add_foreign_key catalog
        { from_table = "b"; from_column = "b_fk"; to_table = "a"; to_column = "a_pk" })

let test_catalog_indexes () =
  let catalog = two_table_catalog () in
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  check_bool "index exists" true (Catalog.find_index catalog ~table:"child" ~column:"fk" <> None);
  check_int "idempotent build" 1 (List.length (Catalog.indexes_on catalog "child"))

let test_catalog_replace_table () =
  let catalog = two_table_catalog () in
  Catalog.build_index catalog ~table:"child" ~column:"fk";
  let child = Catalog.find_table catalog "child" in
  (* Double the child rows; the registered index must see the new heap. *)
  let doubled =
    Array.init (2 * Relation.row_count child) (fun i -> [| v_int i; v_int (i mod 3) |])
  in
  Catalog.replace_table catalog
    (Relation.create ~name:"child" ~schema:(Relation.schema child) doubled);
  check_int "rows replaced" 12 (Relation.row_count (Catalog.find_table catalog "child"));
  (match Catalog.find_index catalog ~table:"child" ~column:"fk" with
  | Some idx -> check_int "index rebuilt" 12 (Index.entry_count idx)
  | None -> Alcotest.fail "index lost");
  check_bool "unknown table rejected" true
    (try
       Catalog.replace_table catalog
         (Relation.create ~name:"ghost"
            ~schema:(Schema.create [ { Schema.name = "x"; ty = Value.T_int } ])
            [||]);
       false
     with Invalid_argument _ -> true);
  check_bool "schema change rejected" true
    (try
       Catalog.replace_table catalog
         (Relation.create ~name:"child"
            ~schema:(Schema.create [ { Schema.name = "x"; ty = Value.T_int } ])
            [||]);
       false
     with Invalid_argument _ -> true)

let test_catalog_reachability () =
  let catalog = two_table_catalog () in
  Catalog.add_foreign_key catalog
    { from_table = "child"; from_column = "fk"; to_table = "parent"; to_column = "pk" };
  Alcotest.(check (list string)) "reachable from child" [ "child"; "parent" ]
    (Catalog.reachable_via_fk catalog "child");
  Alcotest.(check (list string)) "parent reaches only itself" [ "parent" ]
    (Catalog.reachable_via_fk catalog "parent")

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rq_storage"
    [
      ( "value",
        [
          Alcotest.test_case "cross-type ordering" `Quick test_value_ordering;
          Alcotest.test_case "numeric cross compare" `Quick test_value_numeric_cross_compare;
          Alcotest.test_case "to_float" `Quick test_value_to_float;
          Alcotest.test_case "date known values" `Quick test_value_date_known;
          Alcotest.test_case "printing" `Quick test_value_pp;
        ]
        @ qcheck [ prop_value_date_roundtrip; prop_value_date_add_days_consistent ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate;
          Alcotest.test_case "project" `Quick test_schema_project;
          Alcotest.test_case "qualify" `Quick test_schema_qualify;
          Alcotest.test_case "row bytes" `Quick test_schema_row_bytes;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
          Alcotest.test_case "get bounds" `Quick test_relation_get_bounds;
          Alcotest.test_case "page geometry" `Quick test_relation_page_geometry;
          Alcotest.test_case "fold and filter" `Quick test_relation_fold_filter;
        ] );
      ( "rid_set",
        [
          Alcotest.test_case "dedup" `Quick test_rid_set_dedup;
          Alcotest.test_case "mem" `Quick test_rid_set_mem;
        ]
        @ qcheck [ prop_rid_set_inter; prop_rid_set_union ] );
      ( "index",
        [
          Alcotest.test_case "probe_eq with duplicates" `Quick test_index_probe_eq;
          Alcotest.test_case "ranges skip nulls" `Quick test_index_range_nulls;
          Alcotest.test_case "leaf pages" `Quick test_index_leaf_pages;
        ]
        @ qcheck [ prop_index_range_matches_scan ] );
      ( "csv",
        [
          Alcotest.test_case "basic parsing" `Quick test_csv_parse_basic;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "CRLF and blank lines" `Quick test_csv_crlf_and_blank_lines;
          Alcotest.test_case "typed conversion" `Quick test_csv_typed_conversion;
          Alcotest.test_case "fold_rows early abort" `Quick test_csv_fold_rows_early_abort;
        ]
        @ qcheck [ prop_csv_roundtrip; prop_csv_fold_rows_matches_parse ] );
      ( "page geometry",
        [ Alcotest.test_case "one constant everywhere" `Quick test_page_geometry ] );
      ( "chunk",
        [
          Alcotest.test_case "columnar roundtrip" `Quick test_chunk_roundtrip;
          Alcotest.test_case "zone-map stats" `Quick test_zone_map_stats;
        ]
        @ qcheck [ prop_zone_map_skip_is_sound ] );
      ( "buffer pool",
        [
          Alcotest.test_case "hits and LRU eviction" `Quick test_buffer_pool_hits_and_eviction;
          Alcotest.test_case "pins block eviction" `Quick test_buffer_pool_pins_block_eviction;
          Alcotest.test_case "resize and reset" `Quick test_buffer_pool_resize_and_reset;
          Alcotest.test_case "sequential sweeps don't flush lookup chunks" `Quick
            test_buffer_pool_scan_resistance;
        ] );
      ( "builder",
        [
          Alcotest.test_case "heap matches create" `Quick test_builder_heap_matches_create;
          Alcotest.test_case "spill roundtrip" `Quick test_builder_spill_roundtrip;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "tables" `Quick test_catalog_tables;
          Alcotest.test_case "duplicate table" `Quick test_catalog_duplicate_table;
          Alcotest.test_case "fk validation" `Quick test_catalog_fk_validation;
          Alcotest.test_case "fk cycle rejected" `Quick test_catalog_fk_cycle;
          Alcotest.test_case "indexes" `Quick test_catalog_indexes;
          Alcotest.test_case "replace table" `Quick test_catalog_replace_table;
          Alcotest.test_case "fk reachability" `Quick test_catalog_reachability;
        ] );
    ]
