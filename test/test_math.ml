(* Unit and property tests for rq_math: PRNG, special functions, Beta and
   binomial distributions, summary statistics. *)

open Rq_math

let check_float = Alcotest.(check (float 1e-9))
let check_close tolerance = Alcotest.(check (float tolerance))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "child differs from parent" false (Int64.equal c1 p1)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_without_replacement () =
  let rng = Rng.create 11 in
  let sample = Rng.sample_without_replacement rng 50 100 in
  Alcotest.(check int) "size" 50 (Array.length sample);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 100);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ())
    sample

let test_rng_without_replacement_full () =
  let rng = Rng.create 12 in
  let sample = Rng.sample_without_replacement rng 20 20 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = n yields a permutation" (Array.init 20 Fun.id) sorted

let test_rng_shuffle_preserves_multiset () =
  let rng = Rng.create 13 in
  let arr = Array.init 40 (fun i -> i mod 7) in
  let shuffled = Array.copy arr in
  Rng.shuffle_in_place rng shuffled;
  let sort a = let c = Array.copy a in Array.sort compare c; c in
  Alcotest.(check (array int)) "same elements" (sort arr) (sort shuffled)

let test_rng_pick () =
  let rng = Rng.create 14 in
  Alcotest.(check int) "singleton pick" 42 (Rng.pick rng [| 42 |]);
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng ([||] : int array)))

let test_rng_uniformity () =
  (* A very loose frequency check: 10 buckets over 20k draws should each
     hold 2000 +- 25%. *)
  let rng = Rng.create 15 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket roughly uniform" true (c > 1500 && c < 2500))
    counts

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays within bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, x) ->
      let rng = Rng.create seed in
      let v = Rng.float rng x in
      v >= 0.0 && v < x)

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_known () =
  check_float "log_gamma 1" 0.0 (Special.log_gamma 1.0);
  check_float "log_gamma 2" 0.0 (Special.log_gamma 2.0);
  check_close 1e-10 "log_gamma 0.5" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  check_close 1e-8 "log_gamma 10 = log 9!" (log 362880.0) (Special.log_gamma 10.0);
  check_close 1e-8 "log_gamma 5 = log 24" (log 24.0) (Special.log_gamma 5.0)

let test_log_gamma_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Special.log_gamma: non-positive argument") (fun () ->
      ignore (Special.log_gamma 0.0))

let test_log_choose () =
  check_close 1e-9 "C(5,2)" (log 10.0) (Special.log_choose 5 2);
  check_close 1e-9 "C(10,0)" 0.0 (Special.log_choose 10 0);
  check_close 1e-9 "C(10,10)" 0.0 (Special.log_choose 10 10);
  check_close 1e-7 "C(52,5)" (log 2598960.0) (Special.log_choose 52 5)

let test_betainc_known () =
  (* I_x(1,1) = x. *)
  check_close 1e-12 "uniform cdf" 0.3 (Special.betainc ~alpha:1.0 ~beta:1.0 0.3);
  (* I_x(2,3) has closed form 6x^2/2 - ... : F(x) = x^2(6 - 8x + 3x^2). *)
  let f x = x *. x *. (6.0 -. (8.0 *. x) +. (3.0 *. x *. x)) in
  List.iter
    (fun x -> check_close 1e-10 "Beta(2,3) cdf" (f x) (Special.betainc ~alpha:2.0 ~beta:3.0 x))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ];
  check_float "x=0" 0.0 (Special.betainc ~alpha:2.0 ~beta:3.0 0.0);
  check_float "x=1" 1.0 (Special.betainc ~alpha:2.0 ~beta:3.0 1.0)

let shape_gen = QCheck.Gen.map (fun x -> 0.25 +. (x *. 50.0)) (QCheck.Gen.float_bound_exclusive 1.0)

let prop_betainc_symmetry =
  QCheck.Test.make ~name:"betainc symmetry I_x(a,b) = 1 - I_(1-x)(b,a)" ~count:300
    QCheck.(triple (make shape_gen) (make shape_gen) (float_range 0.001 0.999))
    (fun (a, b, x) ->
      let lhs = Special.betainc ~alpha:a ~beta:b x in
      let rhs = 1.0 -. Special.betainc ~alpha:b ~beta:a (1.0 -. x) in
      Float.abs (lhs -. rhs) < 1e-9)

let prop_betainc_monotone =
  QCheck.Test.make ~name:"betainc is monotone in x" ~count:300
    QCheck.(triple (make shape_gen) (make shape_gen) (pair (float_range 0.001 0.999) (float_range 0.001 0.999)))
    (fun (a, b, (x1, x2)) ->
      let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
      Special.betainc ~alpha:a ~beta:b lo <= Special.betainc ~alpha:a ~beta:b hi +. 1e-12)

let prop_betainc_inv_roundtrip =
  QCheck.Test.make ~name:"betainc_inv inverts betainc" ~count:300
    QCheck.(triple (make shape_gen) (make shape_gen) (float_range 0.01 0.99))
    (fun (a, b, p) ->
      let x = Special.betainc_inv ~alpha:a ~beta:b p in
      Float.abs (Special.betainc ~alpha:a ~beta:b x -. p) < 1e-8)

(* ------------------------------------------------------------------ *)
(* Beta distribution                                                   *)
(* ------------------------------------------------------------------ *)

let test_beta_create_invalid () =
  List.iter
    (fun (alpha, beta) ->
      Alcotest.check_raises "bad shapes"
        (Invalid_argument "Beta.create: shapes must be positive and finite") (fun () ->
          ignore (Beta.create ~alpha ~beta)))
    [ (0.0, 1.0); (1.0, 0.0); (-1.0, 2.0); (nan, 1.0); (infinity, 1.0) ]

let test_beta_moments () =
  let b = Beta.create ~alpha:2.0 ~beta:6.0 in
  check_close 1e-12 "mean" 0.25 (Beta.mean b);
  check_close 1e-12 "variance" (2.0 *. 6.0 /. (64.0 *. 9.0)) (Beta.variance b);
  Alcotest.(check (option (float 1e-12))) "mode" (Some (1.0 /. 6.0)) (Beta.mode b);
  Alcotest.(check (option (float 1e-12))) "no interior mode" None
    (Beta.mode (Beta.create ~alpha:0.5 ~beta:0.5))

let test_beta_posterior () =
  let prior = Beta.create ~alpha:0.5 ~beta:0.5 in
  let post = Beta.posterior ~prior ~successes:10 ~trials:100 in
  check_close 1e-12 "alpha" 10.5 post.Beta.alpha;
  check_close 1e-12 "beta" 90.5 post.Beta.beta;
  Alcotest.check_raises "bad evidence"
    (Invalid_argument "Beta.posterior: need 0 <= successes <= trials") (fun () ->
      ignore (Beta.posterior ~prior ~successes:5 ~trials:4))

let test_beta_paper_quantiles () =
  (* Paper Sec. 3.4: 10 of 100 under Jeffreys -> 7.8%, 10.1%, 12.8%. *)
  let b = Beta.create ~alpha:10.5 ~beta:90.5 in
  check_close 5e-4 "T=20%" 0.078 (Beta.quantile b 0.20);
  check_close 5e-4 "T=50%" 0.101 (Beta.quantile b 0.50);
  check_close 5e-4 "T=80%" 0.128 (Beta.quantile b 0.80)

let test_beta_pdf_integrates_to_one () =
  let b = Beta.create ~alpha:3.0 ~beta:5.0 in
  let steps = 10_000 in
  let h = 1.0 /. float_of_int steps in
  let acc = ref 0.0 in
  for i = 0 to steps - 1 do
    let x = (float_of_int i +. 0.5) *. h in
    acc := !acc +. (Beta.pdf b x *. h)
  done;
  check_close 1e-5 "unit mass" 1.0 !acc

let test_beta_credible_interval () =
  let b = Beta.create ~alpha:50.5 ~beta:150.5 in
  let lo, hi = Beta.credible_interval b 0.9 in
  Alcotest.(check bool) "contains the median" true
    (lo < Beta.quantile b 0.5 && Beta.quantile b 0.5 < hi);
  check_close 1e-9 "mass is 0.9" 0.9 (Beta.cdf b hi -. Beta.cdf b lo)

let prop_beta_quantile_roundtrip =
  QCheck.Test.make ~name:"Beta quantile/cdf roundtrip" ~count:200
    QCheck.(triple (make shape_gen) (make shape_gen) (float_range 0.01 0.99))
    (fun (a, b, p) ->
      let dist = Beta.create ~alpha:a ~beta:b in
      Float.abs (Beta.cdf dist (Beta.quantile dist p) -. p) < 1e-7)

let prop_beta_quantile_monotone =
  QCheck.Test.make ~name:"Beta quantile monotone in p" ~count:200
    QCheck.(triple (make shape_gen) (make shape_gen) (pair (float_range 0.01 0.99) (float_range 0.01 0.99)))
    (fun (a, b, (p1, p2)) ->
      let dist = Beta.create ~alpha:a ~beta:b in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Beta.quantile dist lo <= Beta.quantile dist hi +. 1e-12)

(* Posterior-quantile properties backing the robust estimator: the
   selectivity estimate is [Beta.quantile (posterior k n) T], so these are
   the monotonicity/sanity guarantees the optimizer leans on. *)
let posterior_prior = Beta.create ~alpha:0.5 ~beta:0.5

let kn_gen =
  (* (k, n) with 0 <= k <= n and n >= 1 *)
  QCheck.(
    map
      (fun (a, b) -> (min a b, max 1 (max a b)))
      (pair (int_range 0 500) (int_range 1 500)))

let prop_posterior_quantile_monotone_in_confidence =
  QCheck.Test.make ~name:"posterior quantile monotone in confidence T" ~count:200
    QCheck.(pair kn_gen (pair (float_range 0.01 0.99) (float_range 0.01 0.99)))
    (fun ((k, n), (t1, t2)) ->
      let post = Beta.posterior ~prior:posterior_prior ~successes:k ~trials:n in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      Beta.quantile post lo <= Beta.quantile post hi +. 1e-12)

let prop_posterior_quantile_monotone_in_k =
  QCheck.Test.make ~name:"posterior quantile monotone in k at fixed n" ~count:200
    QCheck.(pair (pair kn_gen (int_range 0 500)) (float_range 0.01 0.99))
    (fun (((a, n), b), t) ->
      (* Two success counts for the same n: more observed matches must
         never lower the estimate (Beta(k+a, n-k+b) is stochastically
         increasing in k). *)
      let k1 = min (min a b) n and k2 = min (max a b) n in
      let q k = Beta.quantile (Beta.posterior ~prior:posterior_prior ~successes:k ~trials:n) t in
      q k1 <= q k2 +. 1e-12)

let prop_posterior_quantile_in_unit_interval =
  QCheck.Test.make ~name:"posterior quantile in [0,1] at k=0 and k=n" ~count:200
    QCheck.(pair (int_range 1 500) (float_range 0.01 0.99))
    (fun (n, t) ->
      let q k = Beta.quantile (Beta.posterior ~prior:posterior_prior ~successes:k ~trials:n) t in
      let q0 = q 0 and qn = q n in
      0.0 <= q0 && q0 <= 1.0 && 0.0 <= qn && qn <= 1.0 && q0 <= qn)

(* ------------------------------------------------------------------ *)
(* Binomial                                                            *)
(* ------------------------------------------------------------------ *)

let test_binomial_pmf_known () =
  check_close 1e-12 "C(4,2)/16" 0.375 (Binomial.pmf ~n:4 ~p:0.5 2);
  check_close 1e-12 "p=0, k=0" 1.0 (Binomial.pmf ~n:10 ~p:0.0 0);
  check_close 1e-12 "p=0, k=1" 0.0 (Binomial.pmf ~n:10 ~p:0.0 1);
  check_close 1e-12 "p=1, k=n" 1.0 (Binomial.pmf ~n:10 ~p:1.0 10)

let test_binomial_cdf_vs_sum () =
  let n = 30 and p = 0.137 in
  let acc = ref 0.0 in
  for k = 0 to n do
    acc := !acc +. Binomial.pmf ~n ~p k;
    check_close 1e-9 (Printf.sprintf "cdf at %d" k) !acc (Binomial.cdf ~n ~p k)
  done

let test_binomial_moments () =
  check_float "mean" 4.5 (Binomial.mean ~n:30 ~p:0.15);
  check_close 1e-12 "variance" (30.0 *. 0.15 *. 0.85) (Binomial.variance ~n:30 ~p:0.15)

let test_binomial_expectation () =
  (* E[K] via fold_support must match n*p. *)
  check_close 1e-6 "E[K]" 1.0 (Binomial.expectation ~n:1000 ~p:0.001 float_of_int);
  check_close 1e-9 "E[const]" 7.0 (Binomial.expectation ~n:500 ~p:0.3 (fun _ -> 7.0))

let prop_binomial_mass_sums_to_one =
  QCheck.Test.make ~name:"binomial mass sums to ~1" ~count:100
    QCheck.(pair (int_range 1 2000) (float_range 0.0001 0.9999))
    (fun (n, p) ->
      let total = Binomial.fold_support ~n ~p ~init:0.0 ~f:(fun acc _ w -> acc +. w) in
      Float.abs (total -. 1.0) < 1e-9)

let test_binomial_invalid () =
  Alcotest.check_raises "k out of support"
    (Invalid_argument "Binomial.log_pmf: k outside support") (fun () ->
      ignore (Binomial.pmf ~n:5 ~p:0.5 6));
  Alcotest.check_raises "bad p" (Invalid_argument "Binomial: p outside [0,1]") (fun () ->
      ignore (Binomial.pmf ~n:5 ~p:1.5 2))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 s.Summary.mean;
  check_float "population variance" 4.0 s.Summary.variance;
  check_float "stddev" 2.0 s.Summary.std_dev;
  check_float "min" 2.0 s.Summary.min;
  check_float "max" 9.0 s.Summary.max;
  Alcotest.(check int) "count" 8 s.Summary.count

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty") (fun () ->
      ignore (Summary.of_array [||]))

let test_summary_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Summary.percentile xs 0.5);
  check_float "min" 1.0 (Summary.percentile xs 0.0);
  check_float "max" 5.0 (Summary.percentile xs 1.0);
  check_float "interpolated" 1.5 (Summary.percentile xs 0.125)

let test_summary_weighted () =
  let s = Summary.weighted [ (10.0, 1.0); (20.0, 3.0) ] in
  check_float "weighted mean" 17.5 s.Summary.mean;
  check_close 1e-9 "weighted variance" 18.75 s.Summary.variance;
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Summary.weighted: weights must sum > 0") (fun () ->
      ignore (Summary.weighted [ (1.0, 0.0) ]))

let prop_summary_welford_matches_naive =
  QCheck.Test.make ~name:"Welford matches two-pass variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let arr = Array.of_list xs in
      let s = Summary.of_array arr in
      let n = float_of_int (Array.length arr) in
      let mean = Array.fold_left ( +. ) 0.0 arr /. n in
      let var = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 arr /. n in
      Float.abs (s.Summary.mean -. mean) < 1e-6 && Float.abs (s.Summary.variance -. var) < 1e-4)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rq_math"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "sample without replacement" `Quick test_rng_without_replacement;
          Alcotest.test_case "full-population sample" `Quick test_rng_without_replacement_full;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_preserves_multiset;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "rough uniformity" `Quick test_rng_uniformity;
        ]
        @ qcheck [ prop_rng_int_in_bounds; prop_rng_float_in_bounds ] );
      ( "special",
        [
          Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known;
          Alcotest.test_case "log_gamma invalid" `Quick test_log_gamma_invalid;
          Alcotest.test_case "log_choose" `Quick test_log_choose;
          Alcotest.test_case "betainc known values" `Quick test_betainc_known;
        ]
        @ qcheck [ prop_betainc_symmetry; prop_betainc_monotone; prop_betainc_inv_roundtrip ] );
      ( "beta",
        [
          Alcotest.test_case "create validation" `Quick test_beta_create_invalid;
          Alcotest.test_case "moments" `Quick test_beta_moments;
          Alcotest.test_case "posterior update" `Quick test_beta_posterior;
          Alcotest.test_case "paper quantiles (Sec. 3.4)" `Quick test_beta_paper_quantiles;
          Alcotest.test_case "pdf integrates to 1" `Quick test_beta_pdf_integrates_to_one;
          Alcotest.test_case "credible interval" `Quick test_beta_credible_interval;
        ]
        @ qcheck
            [
              prop_beta_quantile_roundtrip;
              prop_beta_quantile_monotone;
              prop_posterior_quantile_monotone_in_confidence;
              prop_posterior_quantile_monotone_in_k;
              prop_posterior_quantile_in_unit_interval;
            ] );
      ( "binomial",
        [
          Alcotest.test_case "pmf known values" `Quick test_binomial_pmf_known;
          Alcotest.test_case "cdf matches partial sums" `Quick test_binomial_cdf_vs_sum;
          Alcotest.test_case "moments" `Quick test_binomial_moments;
          Alcotest.test_case "expectation" `Quick test_binomial_expectation;
          Alcotest.test_case "invalid arguments" `Quick test_binomial_invalid;
        ]
        @ qcheck [ prop_binomial_mass_sums_to_one ] );
      ( "summary",
        [
          Alcotest.test_case "basic statistics" `Quick test_summary_basic;
          Alcotest.test_case "empty input" `Quick test_summary_empty;
          Alcotest.test_case "percentile" `Quick test_summary_percentile;
          Alcotest.test_case "weighted" `Quick test_summary_weighted;
        ]
        @ qcheck [ prop_summary_welford_matches_naive ] );
    ]
