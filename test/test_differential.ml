(* Differential plan-correctness oracle.

   A seeded generator produces logical queries over the TPC-H-lite and
   star catalogs; each query is optimized under every estimator
   configuration (robust sampling, histogram+AVI, sample+AVI, sample-ML,
   and the exact oracle) and every chosen plan is executed.  Whatever the
   estimation quality, the *results* must agree: a bad estimate may pick a
   slow plan, never a wrong answer.  A second pass routes optimization
   through the plan cache and checks the cached decision (including the
   served-from-cache repeat) against the uncached one.

   The generator seed comes from DIFF_SEED (default 42); CI runs the suite
   under several seeds. *)

open Rq_exec
open Rq_optimizer
open Rq_workload

let seed =
  match Sys.getenv_opt "DIFF_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
  | None -> 42

(* ------------------------------------------------------------------ *)
(* Query generation                                                    *)
(* ------------------------------------------------------------------ *)

let sum col name = { Plan.fn = Plan.Sum (Expr.col col); output_name = name }
let count name = { Plan.fn = Plan.Count_star; output_name = name }

(* Connected table subsets of TPC-H-lite (FKs: lineitem -> orders,
   lineitem -> part) with type-correct random predicates. *)
let gen_tpch_query rng =
  let pred_lineitem () =
    match Rq_math.Rng.int rng 3 with
    | 0 -> Pred.le (Expr.col "l_quantity") (Expr.int (1 + Rq_math.Rng.int rng 50))
    | 1 -> Pred.gt (Expr.col "l_extendedprice") (Expr.float (Rq_math.Rng.float rng 50_000.0))
    | _ ->
        Pred.And
          [
            Pred.le (Expr.col "l_quantity") (Expr.int (10 + Rq_math.Rng.int rng 40));
            Pred.gt (Expr.col "l_extendedprice") (Expr.float (Rq_math.Rng.float rng 20_000.0));
          ]
  in
  let pred_orders () =
    Pred.gt (Expr.col "o_totalprice") (Expr.float (Rq_math.Rng.float rng 100_000.0))
  in
  let pred_part () =
    match Rq_math.Rng.int rng 2 with
    | 0 -> Pred.lt (Expr.col "p_size") (Expr.int (1 + Rq_math.Rng.int rng 50))
    | _ -> Pred.eq (Expr.col "p_bucket") (Expr.int (Rq_math.Rng.int rng 1000))
  in
  let lineitem () = Logical.scan ~pred:(pred_lineitem ()) "lineitem" in
  let refs =
    match Rq_math.Rng.int rng 4 with
    | 0 -> [ lineitem () ]
    | 1 -> [ lineitem (); Logical.scan ~pred:(pred_orders ()) "orders" ]
    | 2 -> [ lineitem (); Logical.scan ~pred:(pred_part ()) "part" ]
    | _ ->
        [
          lineitem ();
          Logical.scan ~pred:(pred_orders ()) "orders";
          Logical.scan ~pred:(pred_part ()) "part";
        ]
  in
  match Rq_math.Rng.int rng 3 with
  | 0 -> Logical.query ~aggs:[ sum "lineitem.l_extendedprice" "revenue"; count "n" ] refs
  | 1 ->
      (* grouped aggregate: multi-row result exercises the multiset compare *)
      Logical.query ~group_by:[ "lineitem.l_quantity" ]
        ~aggs:[ sum "lineitem.l_extendedprice" "revenue" ]
        refs
  | _ ->
      (* plain SPJ with a projection: row-level differential check *)
      Logical.query ~projection:[ "lineitem.l_rowid"; "lineitem.l_extendedprice" ] refs

let gen_star_query rng =
  let dim n =
    Logical.scan
      ~pred:(Pred.eq (Expr.col "d_filter") (Expr.int (Rq_math.Rng.int rng 10)))
      (Printf.sprintf "dim%d" n)
  in
  let dims =
    List.filter_map
      (fun n -> if Rq_math.Rng.bool rng then Some (dim n) else None)
      [ 1; 2; 3 ]
  in
  let refs = Logical.scan "fact" :: dims in
  match Rq_math.Rng.int rng 3 with
  | 0 -> Logical.query ~aggs:[ sum "fact.f_m1" "total"; count "n" ] refs
  | 1 ->
      Logical.query ~group_by:[ "fact.f_dim1" ] ~aggs:[ sum "fact.f_m2" "total" ] refs
  | _ -> Logical.query ~projection:[ "fact.f_id"; "fact.f_m1" ] refs

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let queries_per_catalog = 12

let estimator_configs stats =
  let est () =
    Rq_core.Robust_estimator.create
      ~confidence:Rq_core.Confidence.(resolve default_setting)
      ()
  in
  [
    ("robust-sampling", Cardinality.robust stats (est ()));
    ("histogram-avi", Cardinality.histogram_avi stats);
    ("sample-avi", Cardinality.sample_avi stats (est ()));
    ("sample-ml", Cardinality.sample_ml stats);
  ]

let execute catalog scale plan =
  let meter = Cost.create ~scale () in
  Executor.run catalog meter plan

(* Every assertion message carries enough to replay the failure by hand:
   the DIFF_SEED that drove the generator, the rendered query, and the
   fault profile in force ("none" for the fault-free passes). *)
let render_query query = Format.asprintf "%a" Logical.pp query

let failure_context ~profile query =
  Printf.sprintf "DIFF_SEED=%d, fault profile %s\nquery: %s" seed profile
    (render_query query)

let fail_differential ?(profile = "none") ~label ~query ~reference ~candidate () =
  Alcotest.failf "%s: plan answered the same query differently (%s)\nreference rows:\n%s\ncandidate rows:\n%s"
    label
    (failure_context ~profile query)
    (String.concat "\n" (Array.to_list (Rq_experiments.Exp_common.canonical_rows reference)))
    (String.concat "\n" (Array.to_list (Rq_experiments.Exp_common.canonical_rows candidate)))

let fail_rejected ?(profile = "none") ~label ~query who e =
  Alcotest.failf "%s: %s rejected the query (%s)\nerror: %s" label who
    (failure_context ~profile query)
    e

let run_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create seed in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  let oracle_opt = Optimizer.create ~scale stats (Cardinality.oracle catalog) in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    let reference =
      match Optimizer.optimize oracle_opt query with
      | Ok d -> execute catalog scale d.Optimizer.plan
      | Error e ->
          fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query "oracle" e
    in
    List.iter
      (fun (name, estimator) ->
        let opt = Optimizer.create ~scale stats estimator in
        match Optimizer.optimize opt query with
        | Error e ->
            fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query name e
        | Ok d ->
            let result = execute catalog scale d.Optimizer.plan in
            if not (Rq_experiments.Exp_common.results_equal reference result) then
              fail_differential
                ~label:(Printf.sprintf "%s query %d under %s" catalog_name i name)
                ~query ~reference ~candidate:result ())
      (estimator_configs stats)
  done

(* The streaming-vs-materialized pass: every chosen plan (no Limit, no
   instrumented guards, so no early exit) must produce byte-identical
   tuples AND move every cost counter identically under both engines.
   (Counter equality itself lives in {!Exp_common.snapshots_equal}, shared
   with the fuzzer's degraded-reconciliation pass.) *)
let snapshots_equal = Rq_experiments.Exp_common.snapshots_equal

let run_engine_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 3) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    List.iter
      (fun (name, estimator) ->
        let opt = Optimizer.create ~scale stats estimator in
        match Optimizer.optimize opt query with
        | Error e ->
            fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query name e
        | Ok d ->
            let run_mode mode =
              let meter = Cost.create ~scale () in
              let res = Executor.run ~mode catalog meter d.Optimizer.plan in
              (res, Cost.snapshot meter)
            in
            let sres, ssnap = run_mode Executor.Streaming in
            let mres, msnap = run_mode Executor.Materialized in
            if sres.Executor.tuples <> mres.Executor.tuples then
              fail_differential
                ~label:
                  (Printf.sprintf "%s query %d under %s: streaming vs materialized"
                     catalog_name i name)
                ~query ~reference:mres ~candidate:sres ();
            if not (snapshots_equal ssnap msnap) then
              Alcotest.failf
                "%s query %d under %s: cost counters diverge (%s)\nstreaming:    %s\nmaterialized: %s"
                catalog_name i name
                (failure_context ~profile:"none" query)
                (Format.asprintf "%a" Cost.pp_snapshot ssnap)
                (Format.asprintf "%a" Cost.pp_snapshot msnap))
      (estimator_configs stats)
  done

(* The vectorized-vs-row data plane pass: the streaming engine against
   itself with the columnar batch plane switched off.  Same law as
   streaming-vs-materialized — byte-identical tuples AND every cost
   counter identical — because the vectorized operators charge per
   selected row exactly where the row operators charge per tuple. *)
let with_vectorize enabled f =
  let saved = !Vectorize.enabled in
  Vectorize.enabled := enabled;
  Fun.protect ~finally:(fun () -> Vectorize.enabled := saved) f

let run_vectorize_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 11) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    List.iter
      (fun (name, estimator) ->
        let opt = Optimizer.create ~scale stats estimator in
        match Optimizer.optimize opt query with
        | Error e ->
            fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query name e
        | Ok d ->
            let run_plane enabled =
              with_vectorize enabled (fun () ->
                  let meter = Cost.create ~scale () in
                  let res = Executor.run ~mode:Executor.Streaming catalog meter d.Optimizer.plan in
                  (res, Cost.snapshot meter))
            in
            let vres, vsnap = run_plane true in
            let rres, rsnap = run_plane false in
            if vres.Executor.tuples <> rres.Executor.tuples then
              fail_differential
                ~label:
                  (Printf.sprintf "%s query %d under %s: vectorized vs row data plane"
                     catalog_name i name)
                ~query ~reference:rres ~candidate:vres ();
            if not (snapshots_equal vsnap rsnap) then
              Alcotest.failf
                "%s query %d under %s: data planes' cost counters diverge (%s)\nvectorized: %s\nrow:        %s"
                catalog_name i name
                (failure_context ~profile:"none" query)
                (Format.asprintf "%a" Cost.pp_snapshot vsnap)
                (Format.asprintf "%a" Cost.pp_snapshot rsnap))
      (estimator_configs stats)
  done

(* The kernel-vs-scan pass: the robust estimator through the bitset
   evidence kernel must be indistinguishable from the row-scan reference —
   identical evidence counts (k, n) on every generated predicate,
   identical chosen plans, identical results. *)
let run_kernel_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 4) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  let est () =
    Rq_core.Robust_estimator.create
      ~confidence:Rq_core.Confidence.(resolve default_setting)
      ()
  in
  let kernel_opt = Optimizer.create ~scale stats (Cardinality.robust stats (est ())) in
  let scan_opt =
    Optimizer.create ~scale stats (Cardinality.robust ~kernel:false stats (est ()))
  in
  let qualified_pred (q : Logical.t) =
    Pred.conj
      (List.map
         (fun (r : Logical.table_ref) ->
           Pred.rename_columns (fun c -> r.Logical.table ^ "." ^ c) r.Logical.pred)
         q.Logical.tables)
  in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    (* Evidence bit-identity on the covering synopsis. *)
    let names = List.map (fun (r : Logical.table_ref) -> r.Logical.table) query.Logical.tables in
    (match Rq_stats.Stats_store.synopsis_for stats names with
    | None -> ()
    | Some syn ->
        let pred = qualified_pred query in
        let kk, kn = Rq_stats.Join_synopsis.evidence syn pred in
        let sk, sn = Rq_stats.Join_synopsis.evidence_scan syn pred in
        if (kk, kn) <> (sk, sn) then
          Alcotest.failf
            "%s query %d: kernel evidence (%d, %d) <> scan evidence (%d, %d) (%s)\npred: %s"
            catalog_name i kk kn sk sn
            (failure_context ~profile:"none" query)
            (Pred.render pred));
    (* Identical decisions, identical answers. *)
    let decide label opt =
      match Optimizer.optimize opt query with
      | Ok d -> d
      | Error e ->
          fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query label e
    in
    let kd = decide "kernel" kernel_opt and sd = decide "scan" scan_opt in
    Alcotest.(check string)
      (Printf.sprintf "%s query %d: kernel and scan choose the same plan (DIFF_SEED=%d)\nquery: %s"
         catalog_name i seed (render_query query))
      (Rq_experiments.Exp_common.plan_digest sd.Optimizer.plan)
      (Rq_experiments.Exp_common.plan_digest kd.Optimizer.plan);
    let kres = execute catalog scale kd.Optimizer.plan in
    let sres = execute catalog scale sd.Optimizer.plan in
    if not (Rq_experiments.Exp_common.results_equal sres kres) then
      fail_differential
        ~label:(Printf.sprintf "%s query %d kernel vs scan" catalog_name i)
        ~query ~reference:sres ~candidate:kres ()
  done

(* The cached-vs-uncached pass: both the freshly-inserted decision and the
   served-from-cache repeat must answer like a cold optimization. *)
let run_cache_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 1) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  let opt = Optimizer.robust ~scale stats in
  let cache = Plan_cache.create () in
  let seen = Hashtbl.create 16 in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    let fingerprint =
      Rq_sql.Fingerprint.to_key
        (Rq_sql.Fingerprint.of_logical
           ~estimator:(Optimizer.estimator opt).Cardinality.name query)
    in
    (* the generator may re-draw an earlier query; its first lookup would
       then hit rather than miss *)
    let fresh = not (Hashtbl.mem seen fingerprint) in
    Hashtbl.replace seen fingerprint ();
    let uncached =
      match Optimizer.optimize opt query with
      | Ok d -> execute catalog scale d.Optimizer.plan
      | Error e ->
          fail_rejected
            ~label:(Printf.sprintf "%s query %d" catalog_name i)
            ~query "uncached optimizer" e
    in
    List.iter
      (fun (pass, expected_outcome) ->
        match Plan_cache.find_or_optimize cache opt ~fingerprint query with
        | Error e ->
            fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query pass e
        | Ok (d, outcome) ->
            if fresh then
              Alcotest.(check string)
                (Printf.sprintf "%s query %d: %s outcome (DIFF_SEED=%d)\nquery: %s" catalog_name
                   i pass seed (render_query query))
                expected_outcome
                (Plan_cache.outcome_to_string outcome)
            else
              Alcotest.(check string)
                (Printf.sprintf "%s query %d: repeat always hits (DIFF_SEED=%d)\nquery: %s"
                   catalog_name i seed (render_query query))
                "hit"
                (Plan_cache.outcome_to_string outcome);
            let result = execute catalog scale d.Optimizer.plan in
            if not (Rq_experiments.Exp_common.results_equal uncached result) then
              fail_differential
                ~label:(Printf.sprintf "%s query %d %s lookup" catalog_name i pass)
                ~query ~reference:uncached ~candidate:result ())
      [ ("cold", "miss"); ("cached", "hit") ]
  done

(* The degraded-statistics pass: every named fault profile is injected
   into the statistics and the robust optimizer must still produce a plan
   (the degradation chain classifies, it never raises) whose answer
   matches the healthy optimizer's.  Faults damage only the statistics —
   never the data — so any result drift is a wrong plan, not a stale
   read.  Failure messages carry the profile name alongside the seed and
   the rendered query. *)
let run_fault_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 5) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  let healthy = Optimizer.robust ~scale stats in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    let reference =
      match Optimizer.optimize healthy query with
      | Ok d -> execute catalog scale d.Optimizer.plan
      | Error e ->
          fail_rejected
            ~label:(Printf.sprintf "%s query %d" catalog_name i)
            ~query "healthy optimizer" e
    in
    List.iter
      (fun profile ->
        let injections =
          match Rq_stats.Fault.profile_injections (Rq_math.Rng.split rng) stats profile with
          | Ok injections -> injections
          | Error e ->
              Alcotest.failf "%s query %d: fault profile did not expand (%s)\nerror: %s"
                catalog_name i
                (failure_context ~profile query)
                e
        in
        let damaged = Rq_stats.Fault.apply (Rq_math.Rng.split rng) stats injections in
        match Optimizer.optimize (Optimizer.robust ~scale damaged) query with
        | Error e ->
            fail_rejected ~profile
              ~label:(Printf.sprintf "%s query %d" catalog_name i)
              ~query "degraded optimizer" e
        | Ok d ->
            let result = execute catalog scale d.Optimizer.plan in
            if not (Rq_experiments.Exp_common.results_equal reference result) then
              fail_differential ~profile
                ~label:(Printf.sprintf "%s query %d under fault profile %s" catalog_name i profile)
                ~query ~reference ~candidate:result ())
      Rq_stats.Fault.profile_names
  done

(* ------------------------------------------------------------------ *)
(* The rewrite pass                                                    *)
(* ------------------------------------------------------------------ *)

(* Decorate base queries with the widened surface the rewrite layer
   handles: ORDER BY, LIMIT (single-table only — multi-table LIMIT ties
   are plan-order-sensitive), FK-edge semijoins, and residual conjuncts
   restating an FK join.  Scalar subqueries are excluded here because the
   unrewritten arm cannot execute them (their laws live in test_rewrite). *)
let widen_tpch rng (q : Logical.t) =
  let bool () = Rq_math.Rng.bool rng in
  let names = Logical.table_names q in
  let q =
    if q.Logical.aggs = [] then
      {
        q with
        Logical.order_by =
          [ { Plan.sort_column = "lineitem.l_extendedprice"; descending = bool () } ];
      }
    else if q.Logical.group_by <> [] && bool () then
      { q with Logical.order_by = [ { Plan.sort_column = "revenue"; descending = bool () } ] }
    else q
  in
  let q =
    match names with
    | [ _ ] when q.Logical.aggs = [] && bool () ->
        { q with Logical.limit = Some (1 + Rq_math.Rng.int rng 20) }
    | _ -> q
  in
  let q =
    (* The semijoin's inner table must not already be joined in FROM. *)
    let orders_free = not (List.mem "orders" names) in
    let part_free = not (List.mem "part" names) in
    if bool () && (orders_free || part_free) then
      let sj =
        if orders_free && (bool () || not part_free) then
          {
            Logical.outer_key = "lineitem.l_orderkey";
            inner =
              Logical.scan
                ~pred:
                  (Pred.gt (Expr.col "o_totalprice")
                     (Expr.float (Rq_math.Rng.float rng 200_000.0)))
                "orders";
            inner_key = "o_orderkey";
          }
        else
          {
            Logical.outer_key = "lineitem.l_partkey";
            inner =
              Logical.scan
                ~pred:(Pred.lt (Expr.col "p_size") (Expr.int (1 + Rq_math.Rng.int rng 50)))
                "part";
            inner_key = "p_partkey";
          }
      in
      { q with Logical.semijoins = [ sj ] }
    else q
  in
  if List.mem "orders" names && bool () then
    {
      q with
      Logical.residual =
        Pred.Cmp (Pred.Eq, Expr.col "lineitem.l_orderkey", Expr.col "orders.o_orderkey");
    }
  else q

let widen_star rng (q : Logical.t) =
  let bool () = Rq_math.Rng.bool rng in
  let names = Logical.table_names q in
  let q =
    if q.Logical.aggs = [] then
      { q with Logical.order_by = [ { Plan.sort_column = "fact.f_id"; descending = bool () } ] }
    else if q.Logical.group_by <> [] && bool () then
      { q with Logical.order_by = [ { Plan.sort_column = "total"; descending = bool () } ] }
    else q
  in
  let q =
    match names with
    | [ _ ] when q.Logical.aggs = [] && bool () ->
        { q with Logical.limit = Some (1 + Rq_math.Rng.int rng 20) }
    | _ -> q
  in
  let q =
    let free =
      List.filter (fun n -> not (List.mem (Printf.sprintf "dim%d" n) names)) [ 1; 2; 3 ]
    in
    if bool () && free <> [] then
      let n = List.nth free (Rq_math.Rng.int rng (List.length free)) in
      let sj =
        {
          Logical.outer_key = Printf.sprintf "fact.f_dim%d" n;
          inner =
            Logical.scan
              ~pred:(Pred.lt (Expr.col "d_filter") (Expr.int (1 + Rq_math.Rng.int rng 10)))
              (Printf.sprintf "dim%d" n);
          inner_key = "d_key";
        }
      in
      { q with Logical.semijoins = [ sj ] }
    else q
  in
  if List.mem "dim1" names && bool () then
    {
      q with
      Logical.residual = Pred.Cmp (Pred.Eq, Expr.col "fact.f_dim1", Expr.col "dim1.d_key");
    }
  else q

(* Rewritten vs unrewritten: the same widened query optimized with the
   rewrite layer on and off, under every estimator; the chosen plans may
   differ (their digests go into the failure message) but the answers may
   not — on the materialized engine, the streaming engine, and the morsel
   engine at 1, 2 and 4 domains. *)
let run_rewrite_differential catalog_name catalog gen widen () =
  let rng = Rq_math.Rng.create (seed + 6) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  let pools = List.map (fun domains -> Parallel.create ~domains ()) [ 1; 2; 4 ] in
  Fun.protect
    ~finally:(fun () -> List.iter Parallel.shutdown pools)
    (fun () ->
      for i = 1 to queries_per_catalog do
        let query = widen rng (gen rng) in
        List.iter
          (fun (name, estimator) ->
            let opt = Optimizer.create ~scale stats estimator in
            let decide ~rewrite who =
              match Optimizer.optimize ~rewrite opt query with
              | Ok d -> d
              | Error e ->
                  fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query
                    who e
            in
            let plain = decide ~rewrite:false (name ^ " without rewrites") in
            let rewritten = decide ~rewrite:true (name ^ " with rewrites") in
            let digests =
              Printf.sprintf "unrewritten plan %s, rewritten plan %s"
                (Rq_experiments.Exp_common.plan_digest plain.Optimizer.plan)
                (Rq_experiments.Exp_common.plan_digest rewritten.Optimizer.plan)
            in
            let reference = execute catalog scale plain.Optimizer.plan in
            let check engine candidate =
              if not (Rq_experiments.Exp_common.results_equal reference candidate) then
                fail_differential
                  ~label:
                    (Printf.sprintf "%s query %d under %s, %s engine (%s)" catalog_name i
                       name engine digests)
                  ~query ~reference ~candidate ()
            in
            check "materialized" (execute catalog scale rewritten.Optimizer.plan);
            let meter = Cost.create ~scale () in
            check "streaming"
              (Executor.run ~mode:Executor.Streaming catalog meter rewritten.Optimizer.plan);
            List.iter
              (fun pool ->
                let meter = Cost.create ~scale () in
                check
                  (Printf.sprintf "morsel(%d domains)" (Parallel.domains pool))
                  (Parallel.run pool catalog meter rewritten.Optimizer.plan))
              pools)
          (estimator_configs stats)
      done)

(* ------------------------------------------------------------------ *)
(* Zone-map pruning is invisible                                       *)
(* ------------------------------------------------------------------ *)

let with_prune enabled f =
  let saved = !Prune.enabled in
  Prune.enabled := enabled;
  Fun.protect ~finally:(fun () -> Prune.enabled := saved) f

let check_prune_invisible ~label catalog scale plan =
  List.iter
    (fun (engine, mode) ->
      let run enabled =
        with_prune enabled (fun () ->
            let meter = Cost.create ~scale () in
            let res = Executor.run ~mode catalog meter plan in
            (res, Cost.snapshot meter))
      in
      let pres, psnap = run true in
      let fres, fsnap = run false in
      if pres.Executor.tuples <> fres.Executor.tuples then
        Alcotest.failf
          "%s (%s engine): pruned scan answered differently\npruned:\n%s\nfull:\n%s" label
          engine
          (String.concat "\n" (Array.to_list (Rq_experiments.Exp_common.canonical_rows pres)))
          (String.concat "\n" (Array.to_list (Rq_experiments.Exp_common.canonical_rows fres)));
      if fsnap.Cost.pages_skipped <> 0 then
        Alcotest.failf "%s (%s engine): unpruned run reported %d skipped pages" label engine
          fsnap.Cost.pages_skipped;
      if psnap.Cost.seq_pages + psnap.Cost.pages_skipped <> fsnap.Cost.seq_pages then
        Alcotest.failf
          "%s (%s engine): page accounting broke: pruned read %d + skipped %d <> full read %d"
          label engine psnap.Cost.seq_pages psnap.Cost.pages_skipped fsnap.Cost.seq_pages)
    [ ("materialized", Executor.Materialized); ("streaming", Executor.Streaming) ]

(* Generated queries under every estimator: each chosen plan must answer
   identically with chunk pruning on and off, and the pruned run's
   read + skipped sequential pages must equal the unpruned run's read
   pages (a skipped chunk charges zero read pages and zero seconds). *)
let run_prune_differential catalog_name catalog gen () =
  let rng = Rq_math.Rng.create (seed + 7) in
  let scale = 1.0 in
  let stats =
    Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng)
      ~config:{ Rq_stats.Stats_store.default_config with sample_size = 200 }
      catalog
  in
  for i = 1 to queries_per_catalog do
    let query = gen rng in
    List.iter
      (fun (name, estimator) ->
        let opt = Optimizer.create ~scale stats estimator in
        match Optimizer.optimize opt query with
        | Error e ->
            fail_rejected ~label:(Printf.sprintf "%s query %d" catalog_name i) ~query name e
        | Ok d ->
            check_prune_invisible
              ~label:
                (Printf.sprintf "%s query %d under %s (%s)" catalog_name i name
                   (failure_context ~profile:"none" query))
              catalog scale d.Optimizer.plan)
      (estimator_configs stats)
  done

(* Fixed plans covering every plan family, with predicates over clustered
   columns so zone maps genuinely skip chunks (asserted on the seq-scan
   family): pruning must be invisible in the answers of all of them. *)
let run_prune_families tpch star () =
  let scale = 1.0 in
  let li pred = Plan.Scan { table = "lineitem"; access = Plan.Seq_scan; pred } in
  let band = Pred.lt (Expr.col "l_orderkey") (Expr.int 300) in
  let orders_band =
    Plan.Scan
      {
        table = "orders";
        access = Plan.Seq_scan;
        pred = Pred.lt (Expr.col "o_orderkey") (Expr.int 300);
      }
  in
  let families =
    [
      ("seq-scan", tpch, li band);
      ( "index-range",
        tpch,
        Plan.Scan
          {
            table = "lineitem";
            access = Plan.Index_range { column = "l_orderkey"; lo = None; hi = Some (Rq_storage.Value.Int 300) };
            pred = band;
          } );
      ( "index-intersect",
        tpch,
        Plan.Scan
          {
            table = "lineitem";
            access =
              Plan.Index_intersect
                [
                  { column = "l_orderkey"; lo = None; hi = Some (Rq_storage.Value.Int 300) };
                  { column = "l_partkey"; lo = Some (Rq_storage.Value.Int 0); hi = Some (Rq_storage.Value.Int 2000) };
                ];
            pred = band;
          } );
      ( "hash-join",
        tpch,
        Plan.Hash_join
          {
            build = orders_band;
            probe = li band;
            build_key = "orders.o_orderkey";
            probe_key = "lineitem.l_orderkey";
          } );
      ( "merge-join",
        tpch,
        Plan.Merge_join
          {
            left = li band;
            right = orders_band;
            left_key = "lineitem.l_orderkey";
            right_key = "orders.o_orderkey";
          } );
      ( "indexed-nl-join",
        tpch,
        Plan.Indexed_nl_join
          {
            outer = li band;
            outer_key = "lineitem.l_orderkey";
            inner_table = "orders";
            inner_key = "o_orderkey";
            inner_pred = Pred.True;
          } );
      ( "star-semijoin",
        star,
        Plan.Star_semijoin
          {
            fact = "fact";
            fact_pred = Pred.lt (Expr.col "f_id") (Expr.int 500);
            dims =
              List.map
                (fun i ->
                  {
                    Plan.dim_table = Printf.sprintf "dim%d" i;
                    dim_pred = Pred.eq (Expr.col "d_filter") (Expr.int 0);
                    fact_fk = Printf.sprintf "f_dim%d" i;
                  })
                [ 1; 2; 3 ];
          } );
      ( "agg-filter-project-sort",
        tpch,
        Plan.Sort
          {
            input =
              Plan.Aggregate
                {
                  input =
                    Plan.Project
                      ( Plan.Filter (li band, Pred.True),
                        [ "lineitem.l_quantity"; "lineitem.l_extendedprice" ] );
                  group_by = [ "lineitem.l_quantity" ];
                  aggs =
                    [
                      { Plan.fn = Plan.Count_star; output_name = "n" };
                      { Plan.fn = Plan.Sum (Expr.col "lineitem.l_extendedprice"); output_name = "rev" };
                    ];
                };
            keys = [ { Plan.sort_column = "n"; descending = true } ];
          } );
      ( "guard-pass",
        tpch,
        Plan.Guard
          { input = li band; expected_rows = 2000.0; max_q_error = 1e9; label = "wide" } );
    ]
  in
  List.iter
    (fun (name, cat, plan) ->
      (match Plan.validate cat plan with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": fixture plan invalid: " ^ msg));
      check_prune_invisible ~label:name cat scale plan)
    families;
  (* The fixture must actually prune: the clustered band leaves most
     lineitem chunks disprovable by their zone maps. *)
  with_prune true (fun () ->
      let meter = Cost.create ~scale () in
      ignore (Executor.run tpch meter (li band));
      let snap = Cost.snapshot meter in
      if snap.Cost.pages_skipped = 0 then
        Alcotest.fail "seq-scan family: zone maps skipped no pages on the clustered band")

let () =
  let rng = Rq_math.Rng.create (seed + 2) in
  let tpch_params = { Tpch.default_params with scale_factor = 0.003 } in
  let tpch = Tpch.generate (Rq_math.Rng.split rng) ~params:tpch_params () in
  let star_params = { Star.default_params with fact_rows = 5_000 } in
  let star = Star.generate (Rq_math.Rng.split rng) ~params:star_params () in
  Alcotest.run "differential"
    [
      ( "estimators agree on results",
        [
          Alcotest.test_case "tpch" `Quick (run_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_differential "star" star gen_star_query);
        ] );
      ( "cache agrees with cold optimization",
        [
          Alcotest.test_case "tpch" `Quick (run_cache_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_cache_differential "star" star gen_star_query);
        ] );
      ( "streaming matches materialized",
        [
          Alcotest.test_case "tpch" `Quick (run_engine_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_engine_differential "star" star gen_star_query);
        ] );
      ( "vectorized plane matches row plane",
        [
          Alcotest.test_case "tpch" `Quick
            (run_vectorize_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick
            (run_vectorize_differential "star" star gen_star_query);
        ] );
      ( "evidence kernel matches row scan",
        [
          Alcotest.test_case "tpch" `Quick (run_kernel_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_kernel_differential "star" star gen_star_query);
        ] );
      ( "degraded statistics still answer correctly",
        [
          Alcotest.test_case "tpch" `Quick (run_fault_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_fault_differential "star" star gen_star_query);
        ] );
      ( "rewrites preserve results",
        [
          Alcotest.test_case "tpch" `Quick
            (run_rewrite_differential "tpch" tpch gen_tpch_query widen_tpch);
          Alcotest.test_case "star" `Quick
            (run_rewrite_differential "star" star gen_star_query widen_star);
        ] );
      ( "zone-map pruning is invisible",
        [
          Alcotest.test_case "tpch" `Quick (run_prune_differential "tpch" tpch gen_tpch_query);
          Alcotest.test_case "star" `Quick (run_prune_differential "star" star gen_star_query);
          Alcotest.test_case "plan families" `Quick (run_prune_families tpch star);
        ] );
    ]
