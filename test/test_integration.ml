(* End-to-end integration tests: full pipelines over the paper's workloads
   (generate -> statistics -> SQL -> optimize -> execute), cross-plan result
   equivalence, and experiment-harness sanity. *)

open Rq_storage
open Rq_exec
open Rq_optimizer
open Rq_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tpch =
  lazy
    (let params = { Tpch.default_params with scale_factor = 0.002 } in
     Tpch.generate (Rq_math.Rng.create 201) ~params ())

let stats_for catalog seed =
  Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create seed)
    ~config:{ Rq_stats.Stats_store.default_config with sample_size = 300 }
    catalog

let result_value (result : Executor.result) =
  (* Single-row single-column aggregate as a string, NULL-safe. *)
  match result.Executor.tuples with
  | [| row |] -> Value.to_string row.(0)
  | _ -> Alcotest.failf "expected one row, got %d" (Array.length result.Executor.tuples)

(* ------------------------------------------------------------------ *)
(* Cross-plan equivalence: every candidate plan for a query computes    *)
(* the same answer.                                                     *)
(* ------------------------------------------------------------------ *)

let all_plans catalog stats query =
  (* Enumerate under several estimators to reach plans a single cost model
     would never pick. *)
  let cost_fn estimator plan = Costing.plan_cost catalog estimator plan in
  let estimators =
    [
      Cardinality.oracle catalog;
      Cardinality.histogram_avi stats;
      Cardinality.robust stats
        (Rq_core.Robust_estimator.create ~confidence:Rq_core.Confidence.median ());
    ]
  in
  List.concat_map
    (fun est -> Enumerate.join_plans catalog ~cost_fn:(cost_fn est) query)
    estimators
  |> List.map (Enumerate.wrap_top catalog query)

let agg_equal catalog plans =
  match plans with
  | [] -> Alcotest.fail "no plans"
  | first :: rest ->
      let reference = result_value (fst (Executor.run_timed catalog first)) in
      List.iter
        (fun plan ->
          let got = result_value (fst (Executor.run_timed catalog plan)) in
          Alcotest.(check string)
            (Printf.sprintf "plan %s agrees" (Plan.describe plan))
            reference got)
        rest;
      reference

let test_exp1_cross_plan_equivalence () =
  let catalog = Lazy.force tpch in
  let stats = stats_for catalog 1 in
  List.iter
    (fun offset ->
      let query = Tpch.exp1_query ~offset in
      let plans = all_plans catalog stats query in
      check_bool "several plans" true (List.length plans >= 2);
      ignore (agg_equal catalog plans))
    [ 30; 65; 90 ]

let test_exp1_matches_naive () =
  let catalog = Lazy.force tpch in
  let stats = stats_for catalog 2 in
  let query = Tpch.exp1_query ~offset:40 in
  let opt = Optimizer.robust stats in
  let decision = Optimizer.optimize_exn opt query in
  let via_plan = result_value (fst (Executor.run_timed catalog decision.Optimizer.plan)) in
  let via_naive = result_value (Naive.evaluate_query catalog query) in
  Alcotest.(check string) "optimizer plan = naive evaluation" via_naive via_plan

let test_exp2_cross_plan_equivalence () =
  let catalog = Lazy.force tpch in
  let stats = stats_for catalog 3 in
  let query = Tpch.exp2_query ~bucket:900 in
  let plans = all_plans catalog stats query in
  check_bool "several join plans" true (List.length plans >= 2);
  let answer = agg_equal catalog plans in
  Alcotest.(check string) "joins match naive" (result_value (Naive.evaluate_query catalog query)) answer

let test_star_cross_plan_equivalence () =
  let params = { Star.default_params with fact_rows = 10_000; join_fraction = 0.03 } in
  let catalog = Star.generate (Rq_math.Rng.create 202) ~params () in
  let stats = stats_for catalog 4 in
  let query = Star.query () in
  let plans = all_plans catalog stats query in
  (* Must include at least one semijoin strategy and one hash cascade. *)
  let descriptions = List.map Plan.describe plans in
  check_bool "includes a semijoin plan" true
    (List.exists (fun d -> String.length d >= 8 && String.sub d 0 8 = "Semijoin") descriptions
    || List.exists
         (fun d ->
           let rec contains i =
             i + 8 <= String.length d && (String.sub d i 8 = "Semijoin" || contains (i + 1))
           in
           contains 0)
         descriptions);
  let row_count plan = Array.length (fst (Executor.run_timed catalog plan)).Executor.tuples in
  List.iter (fun plan -> check_int "one aggregate row" 1 (row_count plan)) plans;
  ignore (agg_equal catalog plans)

let test_sql_pipeline_end_to_end () =
  let catalog = Lazy.force tpch in
  let stats = stats_for catalog 5 in
  let sql =
    "SELECT SUM(l_extendedprice) FROM lineitem, orders, part \
     WHERE p_bucket = 900 /*+ CONFIDENCE(80) */"
  in
  match Rq_sql.Binder.compile catalog sql with
  | Error msg -> Alcotest.fail msg
  | Ok bound ->
      let confidence = Option.get bound.Rq_sql.Binder.confidence_hint in
      let opt = Optimizer.robust ~confidence stats in
      let decision = Optimizer.optimize_exn opt bound.Rq_sql.Binder.query in
      let via_sql = result_value (fst (Executor.run_timed catalog decision.Optimizer.plan)) in
      let direct = result_value (Naive.evaluate_query catalog (Tpch.exp2_query ~bucket:900)) in
      Alcotest.(check string) "SQL pipeline = direct construction" direct via_sql

let test_group_by_pipeline () =
  let catalog = Lazy.force tpch in
  let stats = stats_for catalog 6 in
  let sql =
    "SELECT p_brand, COUNT(*) AS n FROM lineitem, orders, part GROUP BY p_brand"
  in
  match Rq_sql.Binder.compile catalog sql with
  | Error msg -> Alcotest.fail msg
  | Ok bound ->
      let opt = Optimizer.robust stats in
      let decision = Optimizer.optimize_exn opt bound.Rq_sql.Binder.query in
      let result, _ = Executor.run_timed catalog decision.Optimizer.plan in
      let naive = Naive.evaluate_query catalog bound.Rq_sql.Binder.query in
      check_int "group count matches naive" (Array.length naive.Executor.tuples)
        (Array.length result.Executor.tuples);
      (* Total over groups = lineitem row count (FK joins preserve it). *)
      let total =
        Array.fold_left
          (fun acc row -> match row.(1) with Value.Int n -> acc + n | _ -> acc)
          0 result.Executor.tuples
      in
      check_int "counts add up" (Relation.row_count (Catalog.find_table catalog "lineitem")) total

(* ------------------------------------------------------------------ *)
(* Experiment harness sanity                                            *)
(* ------------------------------------------------------------------ *)

let test_exp_single_table_harness () =
  let config =
    {
      Rq_experiments.Exp_single_table.default_config with
      repetitions = 3;
      offsets = [ 40; 80 ];
      scale_factor = 0.002;
      thresholds = [ 20.0; 95.0 ];
    }
  in
  let rows = Rq_experiments.Exp_single_table.run ~config () in
  check_int "one row per offset" 2 (List.length rows);
  List.iter
    (fun row ->
      check_int "series: two thresholds + histograms + oracle" 4
        (List.length row.Rq_experiments.Exp_common.series);
      List.iter
        (fun (_, cell) ->
          Array.iter
            (fun t -> check_bool "positive time" true (t > 0.0))
            cell.Rq_experiments.Exp_common.times)
        row.Rq_experiments.Exp_common.series)
    rows;
  (* T=95% must be (near-)deterministic across draws. *)
  let tradeoff = Rq_experiments.Exp_single_table.tradeoff rows in
  let t95 = List.assoc "T=95%" tradeoff in
  let t20 = List.assoc "T=20%" tradeoff in
  check_bool "conservative threshold has lower variance" true
    (t95.Rq_math.Summary.std_dev <= t20.Rq_math.Summary.std_dev +. 1e-9)

let test_partial_stats_harness () =
  let config =
    { Rq_experiments.Exp_partial_stats.default_config with scale_factor = 0.002;
      buckets = [ 0; 999 ] }
  in
  let rows = Rq_experiments.Exp_partial_stats.run ~config () in
  check_int "two buckets" 2 (List.length rows);
  List.iter
    (fun row ->
      check_int "three tiers" 3 (List.length row.Rq_experiments.Exp_partial_stats.estimates);
      List.iter
        (fun (_, est) -> check_bool "estimates positive" true (est > 0.0))
        row.Rq_experiments.Exp_partial_stats.estimates)
    rows;
  (* Degraded tiers are selectivity-blind: their estimates cannot depend on
     the bucket parameter. *)
  (match rows with
  | [ a; b ] ->
      let degraded r label = List.assoc label r.Rq_experiments.Exp_partial_stats.estimates in
      List.iter
        (fun label ->
          check_bool (label ^ " is flat") true
            (Float.abs (degraded a label -. degraded b label) < 1e-6))
        [ "single-table-samples"; "no-statistics" ]
  | _ -> Alcotest.fail "expected two rows")

let test_overhead_harness () =
  let config =
    { Rq_experiments.Overhead.default_config with iterations = 3; scale_factor = 0.002 }
  in
  let rows = Rq_experiments.Overhead.run ~config () in
  check_int "three templates" 3 (List.length rows);
  List.iter
    (fun m ->
      check_bool "positive timings" true
        (m.Rq_experiments.Overhead.histogram_ms > 0.0 && m.Rq_experiments.Overhead.robust_ms > 0.0
        && Float.is_finite m.Rq_experiments.Overhead.ratio))
    rows

let test_workbench () =
  let catalog = Lazy.force tpch in
  let scale = Tpch.cost_scale catalog in
  let sqls =
    [
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN '07/01/97' AND '07/30/97' \
       AND l_receiptdate BETWEEN '08/15/97' AND '09/13/97'";
      "/*+ CONFIDENCE(20) */ SELECT COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN \
       '07/01/97' AND '07/30/97' AND l_receiptdate BETWEEN '11/01/97' AND '11/30/97'";
      "SELECT SUM(l_extendedprice) FROM lineitem, orders, part WHERE p_bucket = 999";
    ]
  in
  match Rq_experiments.Workbench.run ~scale catalog sqls with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      check_int "three queries" 3 (List.length report.Rq_experiments.Workbench.queries);
      check_bool "regret at least 1" true (report.Rq_experiments.Workbench.worst_regret >= 1.0);
      let second = List.nth report.Rq_experiments.Workbench.queries 1 in
      Alcotest.(check (float 1e-9)) "hint honored" 20.0
        second.Rq_experiments.Workbench.threshold_percent;
      let first = List.hd report.Rq_experiments.Workbench.queries in
      Alcotest.(check (float 1e-9)) "default policy (moderate)" 80.0
        first.Rq_experiments.Workbench.threshold_percent;
      check_bool "totals add up" true
        (Float.abs
           (report.Rq_experiments.Workbench.total_seconds
           -. List.fold_left
                (fun acc q -> acc +. q.Rq_experiments.Workbench.simulated_seconds)
                0.0 report.Rq_experiments.Workbench.queries)
        < 1e-6);
      check_bool "bad sql reported" true
        (Result.is_error (Rq_experiments.Workbench.run ~scale catalog [ "SELEC nonsense" ]))

let () =
  Alcotest.run "integration"
    [
      ( "cross-plan equivalence",
        [
          Alcotest.test_case "Experiment-1 access paths" `Slow test_exp1_cross_plan_equivalence;
          Alcotest.test_case "Experiment-1 vs naive" `Slow test_exp1_matches_naive;
          Alcotest.test_case "Experiment-2 join plans" `Slow test_exp2_cross_plan_equivalence;
          Alcotest.test_case "star-join strategies" `Slow test_star_cross_plan_equivalence;
        ] );
      ( "sql pipeline",
        [
          Alcotest.test_case "hinted 3-way join" `Slow test_sql_pipeline_end_to_end;
          Alcotest.test_case "group by" `Slow test_group_by_pipeline;
        ] );
      ( "experiment harness",
        [
          Alcotest.test_case "single-table experiment" `Slow test_exp_single_table_harness;
          Alcotest.test_case "overhead measurement" `Slow test_overhead_harness;
          Alcotest.test_case "partial statistics (Sec. 3.5)" `Slow test_partial_stats_harness;
          Alcotest.test_case "workbench batch runner" `Slow test_workbench;
        ] );
    ]
