(* Guarded re-optimization: a cardinality guard catches a misestimate
   mid-query and the optimizer replans over the materialized intermediate.

   1. Build an orders <- lineitems pair with an index on orders' key, so
      an indexed nested-loop join is available.
   2. Mislead the optimizer: a fixed-selectivity estimator believes the
      filtered lineitems scan yields ~2 rows, making the INL join into
      orders look nearly free.  In truth the filter keeps half the table
      and every surviving row pays an index probe plus a random page read.
   3. Run the bad plan twice: once unguarded to completion, once under
      cardinality guards.  The guard over the scan fires at ~500x its
      expected rows, execution aborts, the observed count feeds back into
      the estimator, and a hash join finishes from the materialized scan
      output.  Both runs are metered; the guarded one pays for its wasted
      prefix and still wins by orders of magnitude.

   Run with: dune exec examples/guarded_reopt.exe *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let v_int i = Value.Int i

let () =
  let rng = Rq_math.Rng.create 11 in
  let catalog = Catalog.create () in
  let orders = 400 and lineitems = 4000 in
  Catalog.add_table catalog ~primary_key:"o_id"
    (Relation.create ~name:"orders"
       ~schema:
         (Schema.create
            [ { Schema.name = "o_id"; ty = Value.T_int }; { Schema.name = "o_status"; ty = Value.T_int } ])
       (Array.init orders (fun i -> [| v_int i; v_int (Rq_math.Rng.int rng 3) |])));
  Catalog.add_table catalog ~primary_key:"l_id"
    (Relation.create ~name:"lineitems"
       ~schema:
         (Schema.create
            [
              { Schema.name = "l_id"; ty = Value.T_int };
              { Schema.name = "l_order"; ty = Value.T_int };
              { Schema.name = "l_qty"; ty = Value.T_int };
            ])
       (Array.init lineitems (fun i ->
            [| v_int i; v_int (Rq_math.Rng.int rng orders); v_int (1 + Rq_math.Rng.int rng 50) |])));
  Catalog.add_foreign_key catalog
    { from_table = "lineitems"; from_column = "l_order"; to_table = "orders"; to_column = "o_id" };
  Catalog.build_index catalog ~table:"orders" ~column:"o_id";

  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create 12) catalog in

  (* The query: half of lineitems joined to orders. *)
  let pred = Pred.le (Expr.col "l_qty") (Expr.int 25) in
  let query = Logical.query [ Logical.scan ~pred "lineitems"; Logical.scan "orders" ] in

  (* The plan a misestimating optimizer would pick: INL driven by a scan
     it believes is tiny. *)
  let bad_plan =
    Plan.Indexed_nl_join
      {
        outer = Plan.Scan { table = "lineitems"; access = Plan.Seq_scan; pred };
        outer_key = "lineitems.l_order";
        inner_table = "orders";
        inner_key = "o_id";
        inner_pred = Pred.True;
      }
  in
  let misled = Optimizer.create stats (Cardinality.fixed_selectivity catalog 5e-4) in

  Printf.printf "bad plan: %s\n\n" (Plan.describe bad_plan);

  let _, unguarded = Executor.run_timed catalog bad_plan in
  Printf.printf "unguarded, run to completion:  %.4f simulated seconds\n\n" unguarded.Cost.seconds;

  let outcome = Reopt.execute_plan ~threshold:4.0 misled query bad_plan in
  print_string (Reopt.render_events outcome.Reopt.events);
  Printf.printf "\nfinal plan after rescue: %s\n" (Plan.describe outcome.Reopt.final_plan);
  Printf.printf "guarded (incl. wasted prefix): %.4f simulated seconds (%.0fx cheaper)\n"
    outcome.Reopt.snapshot.Cost.seconds
    (unguarded.Cost.seconds /. outcome.Reopt.snapshot.Cost.seconds);
  Printf.printf "result rows: %d (identical either way)\n"
    (Array.length outcome.Reopt.result.Executor.tuples);

  (* The flip side: with good estimates the guards all pass, and the
     metering shows what they cost. *)
  let oracle = Optimizer.create stats (Cardinality.oracle catalog) in
  let good_plan = (Optimizer.optimize_exn oracle query).Optimizer.plan in
  let _, plain = Executor.run_timed catalog good_plan in
  let guarded = Reopt.execute_plan ~threshold:4.0 oracle query good_plan in
  Printf.printf "\nwell-estimated plan %s:\n" (Plan.describe good_plan);
  Printf.printf "  unguarded %.4fs, guarded %.4fs (overhead %.2f%%, no guard fired)\n"
    plain.Cost.seconds guarded.Reopt.snapshot.Cost.seconds
    (100.0
    *. (guarded.Reopt.snapshot.Cost.seconds -. plain.Cost.seconds)
    /. plain.Cost.seconds)
