(* The two-level robustness configuration surface (paper Sec. 6.2.5):
   a system-wide policy, overridable per query with an embedded hint.

   Run with: dune exec examples/sql_hints.exe *)

open Rq_optimizer
open Rq_workload

let explain_sql catalog stats scale setting sql =
  match Rq_sql.Binder.compile catalog sql with
  | Error msg -> Printf.printf "error: %s\n" msg
  | Ok bound ->
      let confidence =
        Rq_core.Confidence.resolve ?query_hint:bound.Rq_sql.Binder.confidence_hint setting
      in
      let opt = Optimizer.robust ~scale ~confidence stats in
      let decision = Optimizer.optimize_exn opt bound.Rq_sql.Binder.query in
      Printf.printf "  T=%3.0f%% -> %s (estimated %.1f s)\n"
        (Rq_core.Confidence.to_percent confidence)
        (Rq_exec.Plan.describe decision.Optimizer.plan)
        decision.Optimizer.estimated_cost

let () =
  let rng = Rq_math.Rng.create 5 in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) () in
  let scale = Tpch.cost_scale catalog in
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) catalog in
  let base_query =
    "SELECT SUM(l_extendedprice) FROM lineitem \
     WHERE l_shipdate BETWEEN '07/01/97' AND '07/30/97' \
     AND l_receiptdate BETWEEN '09/04/97' AND '10/03/97'"
  in
  (* System-wide: conservative (95%), the "no surprises" configuration. *)
  let setting =
    { Rq_core.Confidence.system_default = Rq_core.Confidence.of_policy Rq_core.Confidence.Conservative }
  in
  Printf.printf "system policy: conservative (95%%)\n\n";
  Printf.printf "plain query inherits the system policy:\n";
  explain_sql catalog stats scale setting base_query;
  Printf.printf "\nan exploratory session overrides it per query:\n";
  explain_sql catalog stats scale setting ("/*+ CONFIDENCE(20) */ " ^ base_query);
  Printf.printf "\nnamed policy levels work as hints too:\n";
  explain_sql catalog stats scale setting ("/*+ ROBUSTNESS(moderate) */ " ^ base_query)
