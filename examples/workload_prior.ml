(* Workload-informed priors (paper Sec. 3.3).

   The Jeffreys prior is the right default when nothing is known about the
   workload.  But a system that has already served similar queries knows
   something: their selectivities.  Fitting a Beta prior to that history
   (method of moments) concentrates the posterior where queries actually
   live, which tightens estimates at small sample sizes — and washes out,
   exactly as it should, once the sample is large.

   Run with: dune exec examples/workload_prior.exe *)

open Rq_core

let () =
  (* A history of observed selectivities from "similar" past queries:
     clustered around ~2%. *)
  let history = [ 0.013; 0.022; 0.018; 0.025; 0.016; 0.030; 0.021; 0.019; 0.024; 0.015 ] in
  let fitted =
    match Prior.fit_from_selectivities history with
    | Ok prior -> prior
    | Error msg -> failwith msg
  in
  Printf.printf "fitted prior: %s\n\n" (Format.asprintf "%a" Prior.pp fitted);
  (* A new query whose true selectivity is 2%: compare the estimates the
     default and fitted priors produce as evidence accumulates. *)
  let truth = 0.02 in
  Printf.printf "%-10s %-8s %12s %12s %12s\n" "sample n" "hits k" "Jeffreys" "fitted" "truth";
  List.iter
    (fun n ->
      let k = int_of_float (Float.round (truth *. float_of_int n)) in
      let estimate prior =
        Posterior.quantile (Posterior.infer ~prior ~successes:k ~trials:n ()) 0.5
      in
      Printf.printf "%-10d %-8d %11.3f%% %11.3f%% %11.3f%%\n" n k
        (100.0 *. estimate Prior.Jeffreys)
        (100.0 *. estimate fitted)
        (100.0 *. truth))
    [ 10; 50; 200; 1000 ];
  print_newline ();
  Printf.printf
    "With 10 sample tuples the Jeffreys posterior can barely see a 2%% predicate\n\
     (k is 0); the fitted prior supplies the missing context.  By n = 1000 the\n\
     evidence dominates and the two agree — the prior can help but never hurts\n\
     for long, which is why the paper can afford its non-informative default.\n"
