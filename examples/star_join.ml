(* Star-join plan selection under correlated dimensions (paper Exp. 3).

   The generator plants a joint distribution where each dimension filter
   passes 10% of fact rows, but the fraction passing ALL THREE filters is a
   knob — anywhere from 0% to 10%.  A histogram optimizer multiplies the
   marginals and always estimates 0.1%, so it always picks the semijoin
   strategy; the robust optimizer reads the joint fraction off its fact-
   table join synopsis and switches to hash joins when semijoins would
   explode.

   Run with: dune exec examples/star_join.exe *)

open Rq_optimizer
open Rq_workload

let () =
  let query = Star.query () in
  Printf.printf "%-10s %-10s %-42s %-42s\n" "joint%" "true%" "robust plan (T=80%)" "histogram plan";
  List.iter
    (fun join_fraction ->
      let rng = Rq_math.Rng.create 99 in
      let params = { Star.default_params with join_fraction; fact_rows = 60_000 } in
      let catalog = Star.generate (Rq_math.Rng.split rng) ~params () in
      let scale = Star.cost_scale catalog in
      let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) catalog in
      let time_of opt =
        let decision = Optimizer.optimize_exn opt query in
        let meter = Rq_exec.Cost.create ~scale () in
        ignore (Rq_exec.Executor.run catalog meter decision.Optimizer.plan);
        ( Rq_exec.Plan.describe decision.Optimizer.plan,
          (Rq_exec.Cost.snapshot meter).Rq_exec.Cost.seconds )
      in
      let robust_plan, robust_time = time_of (Optimizer.robust ~scale stats) in
      let hist_plan, hist_time = time_of (Optimizer.baseline ~scale stats) in
      Printf.printf "%-10.2f %-10.3f %-42s %-42s\n" (100.0 *. join_fraction)
        (100.0 *. Star.true_selectivity catalog)
        (Printf.sprintf "%s (%.0fs)" robust_plan robust_time)
        (Printf.sprintf "%s (%.0fs)" hist_plan hist_time))
    [ 0.0; 0.005; 0.02; 0.05; 0.1 ]
