(* Two users, one query, different risk tolerances (paper Sec. 2.1).

   An analyst running ad-hoc exploration wants the lowest expected time and
   tolerates occasional slow queries; a dashboard serving repeated short
   interactions needs the time to be predictable.  Both run the paper's
   Experiment-1 lineitem template; the only difference is the robustness
   policy.  We replay the query over many independent statistics draws and
   compare the resulting execution-time distributions.

   Run with: dune exec examples/exploratory_vs_dashboard.exe *)

open Rq_optimizer
open Rq_workload

let () =
  let rng = Rq_math.Rng.create 2024 in
  let catalog = Tpch.generate (Rq_math.Rng.split rng) () in
  let scale = Tpch.cost_scale catalog in
  let draws = 15 in
  (* An offset near the plan crossover (true selectivity ~0.1%, just below it), where estimation uncertainty is
     consequential. *)
  let query = Tpch.exp1_query ~offset:75 in
  Printf.printf "true query selectivity: %.3f%%\n\n"
    (100.0 *. Tpch.exp1_selectivity catalog ~offset:75);
  let time_plan plan =
    let meter = Rq_exec.Cost.create ~scale () in
    ignore (Rq_exec.Executor.run catalog meter plan);
    (Rq_exec.Cost.snapshot meter).Rq_exec.Cost.seconds
  in
  let profiles =
    List.map
      (fun policy ->
        let confidence = Rq_core.Confidence.of_policy policy in
        let times =
          Array.init draws (fun draw ->
              let stats =
                Rq_stats.Stats_store.update_statistics (Rq_math.Rng.create (1000 + draw))
                  catalog
              in
              let opt = Optimizer.robust ~scale ~confidence stats in
              time_plan (Optimizer.optimize_exn opt query).Optimizer.plan)
        in
        (policy, Rq_math.Summary.of_array times))
      [ Rq_core.Confidence.Aggressive; Rq_core.Confidence.Conservative ]
  in
  Printf.printf "%-14s %10s %10s %10s %10s\n" "policy" "mean (s)" "stddev" "best" "worst";
  List.iter
    (fun (policy, s) ->
      Printf.printf "%-14s %10.2f %10.2f %10.2f %10.2f\n"
        (Rq_core.Confidence.policy_to_string policy)
        s.Rq_math.Summary.mean s.Rq_math.Summary.std_dev s.Rq_math.Summary.min
        s.Rq_math.Summary.max)
    profiles;
  print_newline ();
  Printf.printf
    "The aggressive policy gambles on the index plan: sometimes faster, but the\n\
     worst case is much slower and the variance across statistics refreshes is\n\
     higher.  The conservative policy pays a small premium for a time that is\n\
     nearly identical on every draw — the dashboard's preference.\n"
