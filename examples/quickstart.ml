(* Quickstart: the robust estimation pipeline on a toy table.

   1. Build a small catalog with one table and two indexed columns whose
      values are correlated.
   2. UPDATE STATISTICS: draw a precomputed sample and build histograms.
   3. Ask both estimators for the selectivity of a conjunctive predicate —
      the histogram baseline multiplies marginals (AVI) and misses the
      correlation; the robust estimator reads it off the sample and also
      exposes its uncertainty as a posterior distribution.
   4. Let the optimizer pick plans at different confidence thresholds.

   Run with: dune exec examples/quickstart.exe *)

open Rq_storage
open Rq_exec
open Rq_optimizer

let () =
  let rng = Rq_math.Rng.create 7 in
  (* A 50k-row table of web requests: latency_ms and bytes_sent are highly
     correlated (slow requests send more data). *)
  let schema =
    Schema.create
      [
        { Schema.name = "request_id"; ty = Value.T_int };
        { Schema.name = "latency_ms"; ty = Value.T_int };
        { Schema.name = "bytes_sent"; ty = Value.T_int };
      ]
  in
  let rows =
    Array.init 50_000 (fun i ->
        let latency = 1 + Rq_math.Rng.int rng 1000 in
        let bytes = (latency * 900) + Rq_math.Rng.int rng 100_000 in
        [| Value.Int i; Value.Int latency; Value.Int bytes |])
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog ~primary_key:"request_id"
    (Relation.create ~name:"requests" ~schema rows);
  Catalog.build_index catalog ~table:"requests" ~column:"latency_ms";
  Catalog.build_index catalog ~table:"requests" ~column:"bytes_sent";

  (* Precomputation phase: samples + histograms. *)
  let stats = Rq_stats.Stats_store.update_statistics (Rq_math.Rng.split rng) catalog in

  (* The query: slow AND large — the two predicates are nearly redundant,
     so the true joint selectivity is ~10x what AVI predicts. *)
  let pred =
    Pred.conj
      [
        Pred.ge (Expr.col "latency_ms") (Expr.int 900);
        Pred.ge (Expr.col "bytes_sent") (Expr.int 810_000);
      ]
  in
  let query = Logical.query [ Logical.scan ~pred "requests" ] in

  let truth = Naive.selectivity catalog query.Logical.tables in
  Printf.printf "true selectivity:            %.3f%%\n" (100.0 *. truth);

  let hist = Cardinality.histogram_avi stats in
  Printf.printf "histogram + AVI estimate:    %.3f%%\n"
    (100.0 *. Cardinality.expression_selectivity catalog hist query.Logical.tables);

  (* The robust estimator: evidence -> posterior -> quantile. *)
  let syn = Option.get (Rq_stats.Stats_store.synopsis stats ~root:"requests") in
  let k, n =
    Rq_stats.Join_synopsis.evidence syn
      (Pred.rename_columns (fun c -> "requests." ^ c) pred)
  in
  Printf.printf "sample evidence:             %d of %d tuples match\n" k n;
  let posterior = Rq_core.Posterior.infer ~successes:k ~trials:n () in
  Printf.printf "posterior:                   %s\n"
    (Format.asprintf "%a" Rq_core.Posterior.pp posterior);
  let lo, hi = Rq_core.Posterior.credible_interval posterior 0.9 in
  Printf.printf "90%% credible interval:       [%.3f%%, %.3f%%]\n" (100.0 *. lo) (100.0 *. hi);
  List.iter
    (fun t ->
      Printf.printf "estimate at T=%2g%%:           %.3f%%\n" t
        (100.0 *. Rq_core.Posterior.quantile posterior (t /. 100.0)))
    [ 20.0; 50.0; 80.0; 95.0 ];

  (* Plan choice at two ends of the performance/predictability spectrum. *)
  print_newline ();
  List.iter
    (fun policy ->
      let confidence = Rq_core.Confidence.of_policy policy in
      let opt = Optimizer.robust ~confidence stats in
      let decision = Optimizer.optimize_exn opt query in
      Printf.printf "%-13s (T=%2.0f%%) picks: %s (estimated %.3f s)\n"
        (Rq_core.Confidence.policy_to_string policy)
        (Rq_core.Confidence.to_percent confidence)
        (Plan.describe decision.Optimizer.plan)
        decision.Optimizer.estimated_cost)
    [ Rq_core.Confidence.Aggressive; Rq_core.Confidence.Moderate; Rq_core.Confidence.Conservative ]
