(* robustopt — command-line front end.

   Subcommands:
     explain     parse + optimize a SQL query, print the chosen plan
     run         optimize, execute, print results and simulated time
     estimate    compare selectivity estimates (robust / AVI / truth)
     analyze     print an analytical figure's data series (fig1..fig8)

   Workloads are generated in-memory from a seed: --workload tpch | star. *)

open Cmdliner
open Rq_optimizer

let generate_workload ~workload ~seed ~scale =
  let rng = Rq_math.Rng.create seed in
  match workload with
  | "tpch" ->
      let params = { Rq_workload.Tpch.default_params with scale_factor = scale } in
      let catalog = Rq_workload.Tpch.generate rng ~params () in
      (catalog, Rq_workload.Tpch.cost_scale catalog)
  | "star" ->
      let catalog = Rq_workload.Star.generate rng () in
      (catalog, Rq_workload.Star.cost_scale catalog)
  | other -> failwith (Printf.sprintf "unknown workload %S (expected tpch or star)" other)

(* A --data-dir overrides the generated workload; user data runs at scale 1
   (its costs are whatever its actual size implies). *)
let obtain_catalog ~workload ~seed ~scale ~data_dir =
  match data_dir with
  | Some dir -> (
      match Rq_sql.Loader.load_directory dir with
      | Ok catalog -> (catalog, 1.0)
      | Error msg -> failwith (Printf.sprintf "loading %s: %s" dir msg))
  | None -> generate_workload ~workload ~seed ~scale

let build_stats ~seed ~sample_size catalog =
  Rq_stats.Stats_store.update_statistics
    (Rq_math.Rng.create (seed + 1))
    ~config:{ Rq_stats.Stats_store.default_config with sample_size }
    catalog

let make_optimizer ~estimator ~confidence ~scale stats =
  match estimator with
  | "robust" -> Optimizer.robust ~scale ~confidence stats
  | "histogram" -> Optimizer.baseline ~scale stats
  | other -> failwith (Printf.sprintf "unknown estimator %S (expected robust or histogram)" other)

let compile_sql catalog sql =
  match Rq_sql.Binder.compile catalog sql with
  | Ok bound -> bound
  | Error msg -> failwith ("SQL error: " ^ msg)

let resolve_confidence ~confidence ~hint =
  match hint with
  | Some h -> h
  | None -> Rq_core.Confidence.of_percent confidence

(* ---------------- common flags ---------------- *)

let workload_arg =
  Arg.(value & opt string "tpch" & info [ "workload"; "w" ] ~doc:"Workload: tpch or star.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let scale_arg =
  Arg.(value & opt float 0.01 & info [ "scale" ] ~doc:"TPC-H scale factor (1.0 = 6M lineitems).")

let sample_arg =
  Arg.(value & opt int 500 & info [ "sample-size" ] ~doc:"Synopsis sample size.")

let confidence_arg =
  Arg.(value & opt float 80.0 & info [ "confidence"; "t" ]
       ~doc:"Confidence threshold percent (overridden by a /*+ CONFIDENCE(n) */ hint).")

let estimator_arg =
  Arg.(value & opt string "robust" & info [ "estimator"; "e" ]
       ~doc:"Cardinality estimator: robust or histogram.")

let sql_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let data_dir_arg =
  Arg.(value & opt (some string) None & info [ "data-dir"; "d" ]
       ~doc:"Directory with schema.sql + <table>.csv files (overrides --workload).")

let fault_profile_arg =
  Arg.(value & opt (some string) None & info [ "fault-profile" ]
       ~doc:(Printf.sprintf
               "Damage the statistics store before optimizing (one of %s); estimation then \
                falls back down the degradation chain, reporting each tier transition."
               (String.concat ", " Rq_stats.Fault.profile_names)))

let reopt_threshold_arg =
  Arg.(value & opt (some float) None & info [ "reopt-threshold" ]
       ~doc:"Place cardinality guards in the plan with this q-error threshold (>= 1.0); a \
             violation aborts the pipeline and re-optimizes mid-query over the materialized \
             intermediate.")

let opt_budget_arg =
  Arg.(value & opt (some int) None & info [ "opt-budget" ]
       ~doc:"Cap on candidate-cost evaluations during plan search; when exceeded the \
             optimizer answers with the deterministic left-deep fallback plan.")

let exec_arg =
  Arg.(value & opt string "streaming" & info [ "exec" ]
       ~doc:"Execution engine: streaming (pull-based batch pipeline, early-exit LIMIT and \
             mid-stream guards) or materialized (compute every operator's full output).")

let mode_of_string = function
  | "streaming" -> Rq_exec.Executor.Streaming
  | "materialized" -> Rq_exec.Executor.Materialized
  | other ->
      failwith (Printf.sprintf "unknown --exec %S (expected streaming or materialized)" other)

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
       ~doc:"After execution, print the trace-event log (guards, re-optimization, \
             degradations) and the per-operator span tree with simulated-cost deltas.")

let metrics_json_arg =
  Arg.(value & flag & info [ "metrics-json" ]
       ~doc:"After execution, print the spans and trace events as one JSON object.")

let make_recorder ~trace ~metrics_json =
  if trace || metrics_json then Some (Rq_obs.Recorder.create ()) else None

(* Bench commands surface input/configuration failures as a one-line
   message naming the failing query, and exit nonzero — not a backtrace. *)
let with_bench_errors f =
  try f ()
  with Rq_experiments.Exp_common.Bench_error { context; message } ->
    Printf.eprintf "bench failed at %s: %s\n" context message;
    exit 1

(* Evidence-kernel counters summed over every live synopsis in the store:
   the optimizer-side work (bitmaps built vs. hit, sample rows scanned vs.
   avoided) that spans and cost meters do not see. *)
let kernel_totals stats =
  List.fold_left
    (fun acc root ->
      match Rq_stats.Stats_store.synopsis stats ~root with
      | None -> acc
      | Some syn -> Rq_obs.Metrics.kernel_add acc (Rq_stats.Join_synopsis.kernel_stats syn))
    Rq_obs.Metrics.kernel_zero
    (Rq_stats.Stats_store.synopsis_roots stats)

let print_observability ?kernel ~trace ~metrics_json recorder =
  match recorder with
  | None -> ()
  | Some r ->
      if trace then begin
        print_string (Rq_obs.Recorder.render_events (Rq_obs.Recorder.events r));
        print_string (Rq_obs.Recorder.render_spans (Rq_obs.Recorder.roots r));
        match kernel with
        | Some k when k.Rq_obs.Metrics.evidence_queries > 0 ->
            Format.printf "evidence kernel: %a@." Rq_obs.Metrics.pp_kernel k
        | _ -> ()
      end;
      if metrics_json then begin
        let json =
          match (kernel, Rq_obs.Recorder.to_json r) with
          | Some k, Rq_obs.Json.Obj fields ->
              Rq_obs.Json.Obj (fields @ [ ("kernel", Rq_obs.Metrics.kernel_to_json k) ])
          | _, json -> json
        in
        print_endline (Rq_obs.Json.to_string json)
      end

let check_reopt_threshold = function
  | Some t when t < 1.0 ->
      failwith (Printf.sprintf "--reopt-threshold must be >= 1.0 (a q-error), got %g" t)
  | _ -> ()

(* Apply --fault-profile: damage a copy of the stats and switch to the
   graceful-degradation estimation chain over the damaged store. *)
let apply_fault_profile ?obs ~seed ~confidence ~cost_scale ~profile stats =
  match profile with
  | None -> None
  | Some p ->
      let rng = Rq_math.Rng.create (seed + 7) in
      (match Rq_stats.Fault.profile_injections rng stats p with
      | Error msg -> failwith msg
      | Ok injections ->
          List.iter
            (fun i -> Printf.printf "fault: %s\n" (Rq_stats.Fault.injection_to_string i))
            injections;
          let damaged = Rq_stats.Fault.apply rng stats injections in
          let estimator =
            Cardinality.degrading
              ~log:(fun e ->
                Printf.printf "degraded: %s\n" (Rq_stats.Fault.event_to_string e))
              ?obs damaged
              (Rq_core.Robust_estimator.create ~confidence ())
          in
          Some (Optimizer.create ~scale:cost_scale damaged estimator))

let print_degradations decision =
  List.iter
    (fun e -> Printf.printf "degraded: %s\n" (Rq_stats.Fault.event_to_string e))
    decision.Optimizer.degraded

(* ---------------- explain ---------------- *)

let explain_cmd =
  let analyze_arg =
    Arg.(value & flag & info [ "analyze" ]
         ~doc:"Also execute the plan and report per-node estimated vs. actual rows.")
  in
  let run workload seed scale sample_size confidence estimator analyze data_dir fault_profile
      reopt_threshold opt_budget exec trace metrics_json sql =
    check_reopt_threshold reopt_threshold;
    let mode = mode_of_string exec in
    let catalog, cost_scale = obtain_catalog ~workload ~seed ~scale ~data_dir in
    let stats = build_stats ~seed ~sample_size catalog in
    let bound = compile_sql catalog sql in
    let confidence = resolve_confidence ~confidence ~hint:bound.Rq_sql.Binder.confidence_hint in
    let recorder = make_recorder ~trace ~metrics_json in
    let opt =
      match
        apply_fault_profile ?obs:recorder ~seed ~confidence ~cost_scale ~profile:fault_profile
          stats
      with
      | Some damaged_opt -> damaged_opt
      | None -> make_optimizer ~estimator ~confidence ~scale:cost_scale stats
    in
    Printf.printf "confidence threshold: %g%%\n" (Rq_core.Confidence.to_percent confidence);
    (match Optimizer.explain opt bound.Rq_sql.Binder.query with
    | Ok report -> print_string report
    | Error msg -> failwith msg);
    if analyze then begin
      let decision =
        match
          Optimizer.optimize ?budget:opt_budget
            ?record:(Option.map Rq_obs.Recorder.record recorder)
            opt bound.Rq_sql.Binder.query
        with
        | Ok d -> d
        | Error msg -> failwith msg
      in
      print_degradations decision;
      (* With a guard threshold, EXPLAIN ANALYZE shows each checkpoint and
         whether it would have fired. *)
      let plan =
        match reopt_threshold with
        | None -> decision.Optimizer.plan
        | Some threshold -> Reopt.instrument ~threshold opt decision.Optimizer.plan
      in
      print_newline ();
      let report =
        Explain_analyze.analyze catalog ~scale:cost_scale ?obs:recorder ~mode
          (Optimizer.estimator opt) plan
      in
      print_string (Explain_analyze.render_report report);
      print_observability ~kernel:(kernel_totals stats) ~trace ~metrics_json recorder
    end
  in
  let term =
    Term.(const run $ workload_arg $ seed_arg $ scale_arg $ sample_arg $ confidence_arg
          $ estimator_arg $ analyze_arg $ data_dir_arg $ fault_profile_arg
          $ reopt_threshold_arg $ opt_budget_arg $ exec_arg $ trace_arg $ metrics_json_arg
          $ sql_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Optimize a SQL query and print the chosen plan (optionally EXPLAIN ANALYZE).")
    term

(* ---------------- run ---------------- *)

let print_result_rows result =
  let columns =
    Rq_storage.Schema.columns result.Rq_exec.Executor.schema
    |> List.map (fun c -> c.Rq_storage.Schema.name)
  in
  Printf.printf "%s\n" (String.concat "\t" columns);
  let shown = min 20 (Array.length result.Rq_exec.Executor.tuples) in
  for i = 0 to shown - 1 do
    let row = result.Rq_exec.Executor.tuples.(i) in
    print_endline
      (String.concat "\t"
         (Array.to_list (Array.map Rq_storage.Value.to_string row)))
  done;
  if Array.length result.Rq_exec.Executor.tuples > shown then
    Printf.printf "... (%d rows total)\n" (Array.length result.Rq_exec.Executor.tuples)

let run_cmd =
  let run workload seed scale sample_size confidence estimator data_dir fault_profile
      reopt_threshold opt_budget exec trace metrics_json sql =
    check_reopt_threshold reopt_threshold;
    let mode = mode_of_string exec in
    let catalog, cost_scale = obtain_catalog ~workload ~seed ~scale ~data_dir in
    let stats = build_stats ~seed ~sample_size catalog in
    let bound = compile_sql catalog sql in
    let confidence = resolve_confidence ~confidence ~hint:bound.Rq_sql.Binder.confidence_hint in
    let recorder = make_recorder ~trace ~metrics_json in
    let opt =
      match
        apply_fault_profile ?obs:recorder ~seed ~confidence ~cost_scale ~profile:fault_profile
          stats
      with
      | Some damaged_opt -> damaged_opt
      | None -> make_optimizer ~estimator ~confidence ~scale:cost_scale stats
    in
    let query = bound.Rq_sql.Binder.query in
    let decision =
      match
        Optimizer.optimize ?budget:opt_budget
          ?record:(Option.map Rq_obs.Recorder.record recorder)
          opt query
      with
      | Ok d -> d
      | Error msg -> failwith msg
    in
    print_degradations decision;
    (match reopt_threshold with
    | None ->
        let meter = Rq_exec.Cost.create ~scale:cost_scale () in
        let result =
          Rq_exec.Executor.run ?obs:recorder ~mode catalog meter decision.Optimizer.plan
        in
        let snapshot = Rq_exec.Cost.snapshot meter in
        Printf.printf "plan: %s\n" (Rq_exec.Plan.describe decision.Optimizer.plan);
        Format.printf "estimated cost: %.3f s; simulated execution: %a@."
          decision.Optimizer.estimated_cost Rq_exec.Cost.pp_snapshot snapshot;
        print_result_rows result
    | Some threshold ->
        let outcome =
          Reopt.execute_plan ~threshold ?obs:recorder ~mode opt query decision.Optimizer.plan
        in
        Printf.printf "initial plan: %s\n"
          (Rq_exec.Plan.describe outcome.Reopt.initial_plan);
        print_string (Reopt.render_events outcome.Reopt.events);
        if outcome.Reopt.reoptimizations > 0 then
          Printf.printf "final plan: %s\n" (Rq_exec.Plan.describe outcome.Reopt.final_plan);
        Format.printf "simulated execution (incl. wasted work): %a@."
          Rq_exec.Cost.pp_snapshot outcome.Reopt.snapshot;
        print_result_rows outcome.Reopt.result);
    print_observability ~kernel:(kernel_totals stats) ~trace ~metrics_json recorder
  in
  let term =
    Term.(const run $ workload_arg $ seed_arg $ scale_arg $ sample_arg $ confidence_arg
          $ estimator_arg $ data_dir_arg $ fault_profile_arg $ reopt_threshold_arg
          $ opt_budget_arg $ exec_arg $ trace_arg $ metrics_json_arg $ sql_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Optimize and execute a SQL query, optionally with cardinality guards \
             (--reopt-threshold), injected statistics faults (--fault-profile), or an \
             optimization budget (--opt-budget).")
    term

(* ---------------- estimate ---------------- *)

let estimate_cmd =
  let run workload seed scale sample_size data_dir sql =
    let catalog, _ = obtain_catalog ~workload ~seed ~scale ~data_dir in
    let stats = build_stats ~seed ~sample_size catalog in
    let bound = compile_sql catalog sql in
    let refs = bound.Rq_sql.Binder.query.Logical.tables in
    let truth = Naive.cardinality catalog refs in
    Printf.printf "true cardinality: %d rows\n" truth;
    Printf.printf "%-14s %12s\n" "estimator" "rows";
    let hist = Cardinality.histogram_avi stats in
    Printf.printf "%-14s %12.1f\n" "histogram-AVI"
      (hist.Cardinality.expression_cardinality refs);
    List.iter
      (fun t ->
        let estimator =
          Rq_core.Robust_estimator.create
            ~confidence:(Rq_core.Confidence.of_percent t) ()
        in
        let robust = Cardinality.robust stats estimator in
        Printf.printf "%-14s %12.1f\n"
          (Printf.sprintf "robust T=%g%%" t)
          (robust.Cardinality.expression_cardinality refs))
      [ 5.0; 20.0; 50.0; 80.0; 95.0 ]
  in
  let term =
    Term.(const run $ workload_arg $ seed_arg $ scale_arg $ sample_arg $ data_dir_arg $ sql_arg)
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Compare cardinality estimates against the true cardinality.")
    term

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let figure_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE"
         ~doc:"One of fig1..fig8.")
  in
  let run figure =
    let print_series series =
      List.iter
        (fun { Rq_analysis.Figures.label; points } ->
          Printf.printf "# %s\n" label;
          List.iter (fun (x, y) -> Printf.printf "%.6g\t%.6g\n" x y) points)
        series
    in
    match figure with
    | "fig1" -> print_series (Rq_analysis.Figures.fig1_cost_vs_selectivity ())
    | "fig2" -> print_series (Rq_analysis.Figures.fig2_cost_pdf ())
    | "fig3" -> print_series (Rq_analysis.Figures.fig3_cost_cdf ())
    | "fig4" -> print_series (Rq_analysis.Figures.fig4_prior_comparison ())
    | "fig5" -> print_series (Rq_analysis.Figures.fig5_confidence_sweep ())
    | "fig6" ->
        List.iter
          (fun (t, s) ->
            Printf.printf "%g\t%.3f\t%.3f\n" t s.Rq_math.Summary.mean s.Rq_math.Summary.std_dev)
          (Rq_analysis.Figures.fig6_tradeoff ())
    | "fig7" -> print_series (Rq_analysis.Figures.fig7_sample_size_sweep ())
    | "fig8" -> print_series (Rq_analysis.Figures.fig8_high_crossover ())
    | other -> failwith (Printf.sprintf "unknown figure %S" other)
  in
  let term = Term.(const run $ figure_arg) in
  Cmd.v (Cmd.info "analyze" ~doc:"Print an analytical figure's data series.") term

(* ---------------- batch ---------------- *)

let batch_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"File with one SQL query per line (blank lines and -- comments skipped).")
  in
  let policy_arg =
    Arg.(value & opt string "moderate" & info [ "policy" ]
         ~doc:"System robustness policy: conservative, moderate or aggressive.")
  in
  let run workload seed scale sample_size data_dir policy file =
    let catalog, cost_scale = obtain_catalog ~workload ~seed ~scale ~data_dir in
    let setting =
      match Rq_core.Confidence.policy_of_string policy with
      | Ok p -> { Rq_core.Confidence.system_default = Rq_core.Confidence.of_policy p }
      | Error msg -> failwith msg
    in
    let ic = open_in file in
    let sqls = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let is_comment = String.length line >= 2 && String.sub line 0 2 = "--" in
         if line <> "" && not is_comment then sqls := line :: !sqls
       done
     with End_of_file -> close_in ic);
    match
      Rq_experiments.Workbench.run ~setting ~sample_size ~seed ~scale:cost_scale catalog
        (List.rev !sqls)
    with
    | Ok report -> print_string (Rq_experiments.Workbench.render report)
    | Error msg -> failwith msg
  in
  let term =
    Term.(const run $ workload_arg $ seed_arg $ scale_arg $ sample_arg $ data_dir_arg
          $ policy_arg $ file_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a file of SQL queries under a robustness policy and report regret.")
    term

(* ---------------- export ---------------- *)

let export_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
         ~doc:"Target directory (must exist).")
  in
  let run workload seed scale dir =
    let catalog, _ = generate_workload ~workload ~seed ~scale in
    match Rq_sql.Loader.export_directory catalog dir with
    | Ok () -> Printf.printf "wrote schema.sql and %d CSV files to %s\n"
                 (List.length (Rq_storage.Catalog.table_names catalog)) dir
    | Error msg -> failwith msg
  in
  let term = Term.(const run $ workload_arg $ seed_arg $ scale_arg $ dir_arg) in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write a generated workload to schema.sql + CSVs (reloadable with --data-dir).")
    term

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
         ~doc:"One of fig9, fig10, fig11, fig12, overhead, partial-stats, reopt, fuzz.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced repetitions.") in
  let iterations_arg =
    Arg.(value & opt (some int) None & info [ "iterations" ] ~docv:"N"
         ~doc:"(fuzz) Mutation iterations; 0 = unbounded soak.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"(fuzz) Search seed (default 5).")
  in
  let corpus_dir_arg =
    Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR"
         ~doc:"(fuzz) Persist kept cases as DIR/*.fuzz and reload them on start.")
  in
  let time_budget_arg =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS"
         ~doc:"(fuzz) Stop after this much wall-clock time.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
         ~doc:"(fuzz) Re-run a .fuzz-repro file instead of searching; exits 1 if the \
               divergence still reproduces.")
  in
  let baseline_arg =
    Arg.(value & flag & info [ "baseline" ]
         ~doc:"(fuzz) Also run the pure-random control; fail unless steering reaches \
               strictly more coverage pairs.")
  in
  let late_after_arg =
    Arg.(value & opt (some int) None & info [ "require-new-after" ] ~docv:"N"
         ~doc:"(fuzz) Fail unless an unseen coverage pair is still being found after \
               iteration N.")
  in
  let self_test_arg =
    Arg.(value & flag & info [ "self-test" ]
         ~doc:"(fuzz) Perturb one estimator's quantile and require the fuzzer to catch \
               and shrink the planted divergence.")
  in
  let self_test_rewrite_arg =
    Arg.(value & flag & info [ "self-test-rewrite" ]
         ~doc:"(fuzz) Plant an unsound logical rewrite and require the fuzzer's rewrite \
               pass to catch and shrink the planted divergence.")
  in
  let repro_out_arg =
    Arg.(value & opt string "divergence.fuzz-repro" & info [ "repro-out" ] ~docv:"FILE"
         ~doc:"(fuzz) Where to write the minimal repro on divergence.")
  in
  let run name quick iterations seed corpus_dir time_budget replay baseline late_after
      self_test self_test_rewrite repro_out =
    let module E = Rq_experiments in
    match name with
    | "fig9" ->
        let config =
          if quick then
            { E.Exp_single_table.default_config with repetitions = 4; offsets = [ 30; 50; 65; 80; 90 ] }
          else E.Exp_single_table.default_config
        in
        let rows = E.Exp_single_table.run ~config () in
        print_string (E.Report.rows_table rows);
        print_string (E.Report.plan_mix rows);
        print_string (E.Report.tradeoff_table (E.Exp_single_table.tradeoff rows))
    | "fig10" ->
        let config =
          if quick then
            { E.Exp_three_join.default_config with repetitions = 4; buckets = [ 0; 700; 850; 950; 999 ] }
          else E.Exp_three_join.default_config
        in
        let rows = E.Exp_three_join.run ~config () in
        print_string (E.Report.rows_table rows);
        print_string (E.Report.plan_mix rows);
        print_string (E.Report.tradeoff_table (E.Exp_three_join.tradeoff rows))
    | "fig11" ->
        let config =
          if quick then
            { E.Exp_star_join.default_config with repetitions = 4;
              join_fractions = [ 0.0; 0.01; 0.04; 0.1 ]; fact_rows = 50_000 }
          else E.Exp_star_join.default_config
        in
        let rows = E.Exp_star_join.run ~config () in
        print_string (E.Report.rows_table rows);
        print_string (E.Report.tradeoff_table (E.Exp_star_join.tradeoff rows))
    | "fig12" ->
        let config =
          if quick then
            { E.Exp_sample_size.default_config with repetitions = 4;
              sample_sizes = [ 50; 250; 1000 ]; offsets = [ 30; 50; 65; 80; 90 ] }
          else E.Exp_sample_size.default_config
        in
        print_string (E.Report.sample_size_table (E.Exp_sample_size.run ~config ()))
    | "overhead" ->
        let config =
          if quick then { E.Overhead.default_config with iterations = 10 }
          else E.Overhead.default_config
        in
        print_string (E.Report.overhead_table (E.Overhead.run ~config ()))
    | "partial-stats" ->
        let config =
          if quick then { E.Exp_partial_stats.default_config with scale_factor = 0.003 }
          else E.Exp_partial_stats.default_config
        in
        print_string (E.Report.partial_stats_table (E.Exp_partial_stats.run ~config ()))
    | "reopt" ->
        let config =
          if quick then
            { E.Exp_reopt.default_config with lineitems = 1000; orders = 100; cutoffs = [ 5; 25; 50 ] }
          else E.Exp_reopt.default_config
        in
        print_string (E.Exp_reopt.render (E.Exp_reopt.run ~config ()))
    | "fuzz" -> (
        let module F = E.Exp_fuzz in
        let config =
          {
            F.default_config with
            iterations =
              (match iterations with
              | Some n -> n
              | None -> if quick then 60 else F.default_config.F.iterations);
            seed = Option.value seed ~default:F.default_config.F.seed;
            corpus_dir;
            time_budget;
            baseline;
            late_after;
            self_test;
            self_test_rewrite;
            repro_file = repro_out;
          }
        in
        match replay with
        | Some file -> (
            match F.replay config file with
            | Error e ->
                prerr_endline ("replay: " ^ e);
                exit 2
            | Ok (case, probe, recorded_pass) -> (
                print_endline ("case: " ^ F.case_summary case);
                match probe.F.divergence with
                | Some d ->
                    Printf.printf "divergence still reproduces in pass %s\ndetail: %s\n" d.F.pass
                      d.F.detail;
                    exit 1
                | None ->
                    Printf.printf "no divergence — the recorded failure (pass %s) is fixed\n"
                      recorded_pass))
        | None ->
            let result = F.run ~log:print_endline ~config () in
            print_string (F.render result);
            if not result.F.r_ok then exit 1)
    | other -> failwith (Printf.sprintf "unknown experiment %S" other)
  in
  let term =
    Term.(const run $ name_arg $ quick_arg $ iterations_arg $ seed_arg $ corpus_dir_arg
          $ time_budget_arg $ replay_arg $ baseline_arg $ late_after_arg $ self_test_arg
          $ self_test_rewrite_arg $ repro_out_arg)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one of the paper's empirical experiments (Figures 9-12).")
    term

(* ---------------- bench-throughput ---------------- *)

let bench_throughput_cmd =
  let small_arg =
    Arg.(value & flag & info [ "small" ]
         ~doc:"CI-sized run: smaller catalogs and fewer replays.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"Override the replay seed (default 7).")
  in
  let replays_arg =
    Arg.(value & opt (some int) None & info [ "replays" ] ~docv:"N"
         ~doc:"Override the number of replayed queries.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_throughput.json" & info [ "out" ] ~docv:"FILE"
         ~doc:"Where to write the JSON report; - for none.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Concurrent replay drivers over the sharded plan cache (default 4).")
  in
  let run small seed replays domains out trace metrics_json =
    let module E = Rq_experiments in
    let config = if small then E.Exp_throughput.small_config else E.Exp_throughput.default_config in
    let config =
      match seed with None -> config | Some seed -> { config with E.Exp_throughput.seed }
    in
    let config =
      match replays with None -> config | Some replays -> { config with E.Exp_throughput.replays }
    in
    let config =
      match domains with None -> config | Some domains -> { config with E.Exp_throughput.domains }
    in
    let recorder = make_recorder ~trace ~metrics_json in
    let result = with_bench_errors (fun () -> E.Exp_throughput.run ?obs:recorder ~config ()) in
    print_string (E.Exp_throughput.render result);
    if out <> "-" then begin
      let oc = open_out out in
      output_string oc (Rq_obs.Json.to_string (E.Exp_throughput.to_json result));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    end;
    print_observability ~trace ~metrics_json recorder;
    if not result.E.Exp_throughput.ok then exit 1
  in
  let term =
    Term.(const run $ small_arg $ seed_arg $ replays_arg $ domains_arg $ out_arg
          $ trace_arg $ metrics_json_arg)
  in
  Cmd.v
    (Cmd.info "bench-throughput"
       ~doc:"Replay a mixed workload through the plan cache: optimize/execute time split, \
             hit rate, invalidations, a differential plan-correctness check, and a \
             concurrent replay over a domain-sharded cache.")
    term

(* ---------------- bench-exec ---------------- *)

let bench_exec_cmd =
  let small_arg =
    Arg.(value & flag & info [ "small" ]
         ~doc:"CI-sized run: smaller catalog and fewer repetitions.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"Override the workload seed (default 11).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_exec.json" & info [ "out" ] ~docv:"FILE"
         ~doc:"Where to write the JSON report; - for none.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Top of the morsel-parallel domains axis (default 4).")
  in
  let scale_arg =
    Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"SF"
         ~doc:"TPC-H scale factor (default 0.01; 1.0 is the paper's 6M-row \
               lineitem).  Scales >= 0.1 drop to one repetition unless the \
               default is overridden by --small.")
  in
  let pool_arg =
    Arg.(value & opt (some int) None & info [ "buffer-pool-pages" ] ~docv:"PAGES"
         ~doc:"Cap the global buffer pool at this many 8 KiB pages (rounded \
               down to whole chunks).  Capping well below the data size \
               exercises out-of-core execution.")
  in
  let vectorize_arg =
    Arg.(value & opt (enum [ ("on", true); ("off", false) ]) true
         & info [ "vectorize" ] ~docv:"on|off"
         ~doc:"Data plane of the streaming engine outside the vectorized \
               comparison section (which always runs both planes): \
               column-major vector batches with selection bitsets (on, the \
               default) or row-at-a-time tuple batches (off).")
  in
  let run small seed domains scale pool_pages vectorize out =
    let module E = Rq_experiments in
    let config = if small then E.Exp_exec.small_config else E.Exp_exec.default_config in
    let config =
      match seed with None -> config | Some seed -> { config with E.Exp_exec.seed }
    in
    let config =
      match domains with None -> config | Some domains -> { config with E.Exp_exec.domains }
    in
    let config =
      match scale with
      | None -> config
      | Some scale_factor ->
          (* Big catalogs: one repetition is already minutes of work, and
             holding both engines' result sets for the exact tuple compare
             costs ~1 GB at scale 1 — the digest compare keeps only one
             result live at a time. *)
          let repetitions = if scale_factor >= 0.1 then 1 else config.E.Exp_exec.repetitions in
          let exact_compare = scale_factor < 0.1 in
          { config with E.Exp_exec.scale_factor; repetitions; exact_compare }
    in
    let config =
      match pool_pages with
      | None -> config
      | Some buffer_pool_pages -> { config with E.Exp_exec.buffer_pool_pages }
    in
    let result =
      with_bench_errors (fun () ->
          Rq_exec.Vectorize.with_vectorize vectorize (fun () -> E.Exp_exec.run ~config ()))
    in
    print_string (E.Exp_exec.render result);
    if out <> "-" then begin
      let oc = open_out out in
      output_string oc (Rq_obs.Json.to_string (E.Exp_exec.to_json result));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    end;
    if not result.E.Exp_exec.ok then exit 1
  in
  let term =
    Term.(
      const run $ small_arg $ seed_arg $ domains_arg $ scale_arg $ pool_arg
      $ vectorize_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "bench-exec"
       ~doc:"Streaming vs. materialized executor: early-exit page savings on LIMIT and \
             mid-stream guard workloads, exact counter parity on full drains, real \
             runtime/memory per engine, the morsel-parallel domains axis, and the \
             vectorized-vs-row data plane comparison.")
    term

(* ---------------- bench-optimizer ---------------- *)

let bench_optimizer_cmd =
  let small_arg =
    Arg.(value & flag & info [ "small" ]
         ~doc:"CI-sized run: smaller catalog and fewer repeats.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"Override the world seed (default 11).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_optimizer.json" & info [ "out" ] ~docv:"FILE"
         ~doc:"Where to write the JSON report; - for none.")
  in
  let run small seed out =
    let module E = Rq_experiments in
    let config = if small then E.Exp_optimizer.small_config else E.Exp_optimizer.default_config in
    let config =
      match seed with None -> config | Some seed -> { config with E.Exp_optimizer.seed }
    in
    let result = with_bench_errors (fun () -> E.Exp_optimizer.run ~config ()) in
    print_string (E.Exp_optimizer.render result);
    if out <> "-" then begin
      let oc = open_out out in
      output_string oc (Rq_obs.Json.to_string (E.Exp_optimizer.to_json result));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" out
    end;
    if not result.E.Exp_optimizer.ok then exit 1
  in
  let term = Term.(const run $ small_arg $ seed_arg $ out_arg) in
  Cmd.v
    (Cmd.info "bench-optimizer"
       ~doc:"Bitset evidence kernel vs. row-scan sampling on the optimizer hot path: \
             evidence queries/sec (cold/warm/scan), plans/sec per estimator and \
             confidence, and bit-identity checks on evidence and chosen plans.")
    term

(* ---------------- profile ---------------- *)

let profile_cmd =
  (* Cost-vs-selectivity curves for every access path of a single-table SQL
     query, plus pairwise crossover points: the engine-level Figure 1. *)
  let run workload seed scale sql =
    let catalog, cost_scale = generate_workload ~workload ~seed ~scale in
    let bound = compile_sql catalog sql in
    match bound.Rq_sql.Binder.query.Logical.tables with
    | [ table_ref ] ->
        let plans = Enumerate.access_paths catalog table_ref in
        let selectivities = List.init 21 (fun i -> float_of_int i /. 2000.0) in
        List.iter
          (fun plan ->
            Printf.printf "# plan: %s\n" (Rq_exec.Plan.describe plan);
            List.iter
              (fun (s, c) -> Printf.printf "%.5f\t%.3f\n" s c)
              (Costing.cost_curve catalog ~scale:cost_scale ~selectivities plan))
          plans;
        List.iteri
          (fun i plan_a ->
            List.iteri
              (fun j plan_b ->
                if i < j then
                  match Costing.crossover_points catalog ~scale:cost_scale ~grid:20_000 plan_a plan_b with
                  | [] -> ()
                  | crossings ->
                      Printf.printf "crossover %s / %s: %s\n" (Rq_exec.Plan.describe plan_a)
                        (Rq_exec.Plan.describe plan_b)
                        (String.concat ", "
                           (List.map (fun s -> Printf.sprintf "%.4f%%" (100.0 *. s)) crossings)))
              plans)
          plans
    | _ -> failwith "profile expects a single-table query"
  in
  let term = Term.(const run $ workload_arg $ seed_arg $ scale_arg $ sql_arg) in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Cost-vs-selectivity curves and crossover points for a query's access paths.")
    term

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  (* A plan-choice diagram: which plan the robust optimizer picks at each
     (selectivity, confidence threshold) cell of the Experiment-1 template,
     plus the histogram baseline column. *)
  let run seed scale sample_size =
    let catalog, cost_scale = generate_workload ~workload:"tpch" ~seed ~scale in
    let stats = build_stats ~seed ~sample_size catalog in
    let thresholds = [ 5.0; 20.0; 50.0; 80.0; 95.0 ] in
    Printf.printf "offset	sel%%	%s	histograms
"
      (String.concat "	" (List.map (fun t -> Printf.sprintf "T=%g%%" t) thresholds));
    List.iter
      (fun offset ->
        let query = Rq_workload.Tpch.exp1_query ~offset in
        let choice opt =
          Rq_exec.Plan.describe (Optimizer.optimize_exn opt query).Optimizer.plan
        in
        Printf.printf "%d	%.3f" offset
          (100.0 *. Rq_workload.Tpch.exp1_selectivity catalog ~offset);
        List.iter
          (fun t ->
            let opt =
              Optimizer.robust ~scale:cost_scale
                ~confidence:(Rq_core.Confidence.of_percent t) stats
            in
            Printf.printf "	%s" (choice opt))
          thresholds;
        Printf.printf "	%s
" (choice (Optimizer.baseline ~scale:cost_scale stats)))
      [ 30; 40; 50; 60; 70; 80; 90 ]
  in
  let term = Term.(const run $ seed_arg $ scale_arg $ sample_arg) in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Plan-choice diagram: chosen plan per (selectivity x threshold) cell.")
    term

let () =
  let info =
    Cmd.info "robustopt" ~version:"1.0.0"
      ~doc:"Robust query optimization via Bayesian cardinality estimation (SIGMOD 2005)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ explain_cmd; run_cmd; estimate_cmd; analyze_cmd; experiment_cmd;
            bench_throughput_cmd; bench_exec_cmd; bench_optimizer_cmd; profile_cmd;
            sweep_cmd; export_cmd;
            batch_cmd ]))
